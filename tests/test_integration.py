"""End-to-end integration tests: taskgen → partition → allocate →
simulate → detect → metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HydraAllocator,
    OptimalAllocator,
    SingleCoreAllocator,
    build_singlecore_system,
)
from repro.experiments.runner import build_hydra_system
from repro.metrics.cdf import EmpiricalCDF
from repro.model import SystemModel
from repro.partition import partition_tasks
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.taskgen import (
    generate_workload,
    table1_security_tasks,
    uav_rt_tasks,
)


class TestUavPipeline:
    """The full Fig. 1 pipeline on the case-study workload."""

    @pytest.fixture(scope="class")
    def uav_detection(self):
        from repro.model import Platform

        platform = Platform(2)
        rt_tasks = uav_rt_tasks()
        security = table1_security_tasks()

        partition = partition_tasks(rt_tasks, platform)
        hydra_system = SystemModel(
            platform=platform,
            rt_partition=partition,
            security_tasks=security,
        )
        hydra_alloc = HydraAllocator().allocate(hydra_system)

        single_system = build_singlecore_system(platform, rt_tasks, security)
        single_alloc = SingleCoreAllocator().allocate(single_system)

        results = {}
        for label, system, allocation in (
            ("hydra", hydra_system, hydra_alloc),
            ("single", single_system, single_alloc),
        ):
            sim = simulate_allocation(
                system, allocation, duration=60_000.0, rng=5
            )
            attacks = sample_attacks(
                30, (0.0, 20_000.0), surfaces_of(security), rng=5
            )
            results[label] = detection_times(sim, attacks, security)
        return results

    def test_both_schemes_schedulable_and_detect(self, uav_detection):
        for times in uav_detection.values():
            cdf = EmpiricalCDF(times)
            assert cdf.undetected == 0

    def test_hydra_cdf_dominates_singlecore(self, uav_detection):
        hydra = EmpiricalCDF(uav_detection["hydra"])
        single = EmpiricalCDF(uav_detection["single"])
        grid = np.linspace(500.0, 30_000.0, 30)
        hydra_series = hydra.series(list(grid))
        single_series = single.series(list(grid))
        # Paper Fig. 1: HYDRA's CDF sits above SingleCore's.  With a
        # finite sample allow pointwise slack but require dominance in
        # aggregate and no large inversion.
        assert sum(hydra_series) >= sum(single_series)
        assert all(h >= s - 0.15 for h, s in zip(hydra_series, single_series))


class TestSyntheticPipeline:
    def test_workload_to_allocation_roundtrip(self):
        rng = np.random.default_rng(0)
        schedulable = 0
        for _ in range(10):
            workload = generate_workload(4, 2.0, rng)
            system = build_hydra_system(workload)
            assert system is not None  # moderate utilisation always packs
            allocation = HydraAllocator().allocate(system)
            if allocation.schedulable:
                schedulable += 1
                assert len(allocation.assignments) == len(
                    workload.security_tasks
                )
        assert schedulable >= 8

    def test_simulation_respects_allocated_periods(self):
        rng = np.random.default_rng(1)
        workload = generate_workload(2, 1.0, rng)
        system = build_hydra_system(workload)
        allocation = HydraAllocator().allocate(system)
        assert allocation.schedulable
        result = simulate_allocation(
            system, allocation, duration=20_000.0
        )
        for assignment in allocation.assignments:
            jobs = result.completed_jobs_of(assignment.task.name)
            assert jobs, assignment.task.name
            releases = [j.release for j in jobs]
            gaps = [b - a for a, b in zip(releases, releases[1:])]
            for gap in gaps:
                assert gap == pytest.approx(assignment.period)

    def test_optimal_end_to_end_small(self):
        from repro.taskgen.synthetic import SyntheticConfig

        rng = np.random.default_rng(2)
        config = SyntheticConfig(security_task_count=(2, 4))
        workload = generate_workload(2, 1.2, rng, config)
        system = build_hydra_system(workload)
        assert system is not None
        hydra = HydraAllocator().allocate(system)
        optimal = OptimalAllocator().allocate(system)
        if hydra.schedulable:
            assert optimal.schedulable
            assert optimal.cumulative_tightness() >= (
                hydra.cumulative_tightness() - 1e-9
            )

    def test_singlecore_path_on_synthetic(self):
        rng = np.random.default_rng(3)
        workload = generate_workload(2, 0.8, rng)
        system = build_singlecore_system(
            workload.platform, workload.rt_tasks, workload.security_tasks
        )
        assert system is not None
        allocation = SingleCoreAllocator().allocate(system)
        assert allocation.schedulable
        result = simulate_allocation(
            system, allocation, duration=30_000.0
        )
        assert not result.missed_any_deadline
