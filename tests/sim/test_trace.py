"""Unit tests for trace utilities."""

from __future__ import annotations

import pytest

from repro.sim.events import ExecutionSlice
from repro.sim.trace import ascii_gantt, busy_time_by_task, merge_slices


def sl(task: str, core: int, start: float, end: float) -> ExecutionSlice:
    return ExecutionSlice(task=task, core=core, start=start, end=end)


class TestMergeSlices:
    def test_adjacent_same_task_merged(self):
        merged = merge_slices([sl("a", 0, 0.0, 1.0), sl("a", 0, 1.0, 3.0)])
        assert merged == [sl("a", 0, 0.0, 3.0)]

    def test_gap_not_merged(self):
        merged = merge_slices([sl("a", 0, 0.0, 1.0), sl("a", 0, 2.0, 3.0)])
        assert len(merged) == 2

    def test_different_tasks_not_merged(self):
        merged = merge_slices([sl("a", 0, 0.0, 1.0), sl("b", 0, 1.0, 2.0)])
        assert len(merged) == 2

    def test_different_cores_not_merged(self):
        merged = merge_slices([sl("a", 0, 0.0, 1.0), sl("a", 1, 1.0, 2.0)])
        assert len(merged) == 2

    def test_unsorted_input_handled(self):
        merged = merge_slices([sl("a", 0, 1.0, 3.0), sl("a", 0, 0.0, 1.0)])
        assert merged == [sl("a", 0, 0.0, 3.0)]


class TestBusyTime:
    def test_totals(self):
        totals = busy_time_by_task(
            [sl("a", 0, 0.0, 1.5), sl("a", 1, 2.0, 3.0), sl("b", 0, 4.0, 5.0)]
        )
        assert totals["a"] == pytest.approx(2.5)
        assert totals["b"] == pytest.approx(1.0)

    def test_empty(self):
        assert busy_time_by_task([]) == {}


class TestAsciiGantt:
    def test_renders_rows_per_core(self):
        text = ascii_gantt(
            [sl("alpha", 0, 0.0, 5.0), sl("beta", 1, 5.0, 10.0)],
            width=10,
        )
        lines = text.splitlines()
        assert lines[0].startswith("core 0:")
        assert lines[1].startswith("core 1:")
        assert "A" in lines[0]
        assert "B" in lines[1]

    def test_idle_shown_as_dots(self):
        text = ascii_gantt([sl("a", 0, 8.0, 10.0)], end=10.0, width=10)
        row = text.splitlines()[0].split(": ")[1]
        assert row.startswith(".")

    def test_empty_input(self):
        assert "no execution slices" in ascii_gantt([])

    def test_dominant_task_wins_bucket(self):
        text = ascii_gantt(
            [sl("aaa", 0, 0.0, 9.0), sl("b", 0, 9.0, 10.0)],
            width=1,
        )
        row = text.splitlines()[0].split(": ")[1]
        assert row == "A"
