"""The indexed detection path: identical to the scan, minus the rescan.

``detection_times`` builds one :class:`DetectionIndex` per call
(anchor-sorted completions with a suffix minimum) instead of rescanning
every job per attack; the property suite pins that the indexed result
is *identical* — not merely close — to the reference
``detection_time`` scan on arbitrary job/attack configurations,
including the anchor-tolerance edge the scan implements.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet
from repro.sim.attacks import Attack
from repro.sim.detection import (
    DETECTION_POLICIES,
    DetectionIndex,
    build_surface_map,
    detection_time,
    detection_times,
    undetected_breakdown,
)
from repro.sim.engine import SimResult
from repro.sim.events import JobRecord

SURFACES = ("filesystem", "network", "kernel")
MONITORS = {
    "filesystem": ("fs_check",),
    "network": ("net_check", "net_check2"),
    # "kernel" is deliberately unmonitored.
}


def security_suite() -> TaskSet:
    return TaskSet(
        [
            SecurityTask(
                name="fs_check", wcet=2.0, period_des=20.0,
                period_max=200.0, surface="filesystem",
            ),
            SecurityTask(
                name="net_check", wcet=3.0, period_des=30.0,
                period_max=300.0, surface="network",
            ),
            SecurityTask(
                name="net_check2", wcet=1.0, period_des=40.0,
                period_max=400.0, surface="network",
            ),
        ]
    )


@st.composite
def job_lists(draw):
    """Synthetic job records: arbitrary anchors/completions, a few
    unfinished or never-started jobs mixed in."""
    count = draw(st.integers(min_value=0, max_value=40))
    jobs = []
    for i in range(count):
        task = draw(st.sampled_from(
            ("fs_check", "net_check", "net_check2", "rt_task")
        ))
        release = draw(st.floats(
            min_value=0.0, max_value=100.0, allow_nan=False
        ))
        started = draw(st.booleans())
        start = (
            release + draw(st.floats(min_value=0.0, max_value=5.0))
            if started else None
        )
        finished = started and draw(st.booleans())
        completion = (
            start + draw(st.floats(min_value=0.1, max_value=10.0))
            if finished else None
        )
        jobs.append(
            JobRecord(
                task=task, release=release, deadline=release + 50.0,
                start=start, completion=completion, core=0,
            )
        )
    return jobs


@st.composite
def attack_lists(draw):
    count = draw(st.integers(min_value=0, max_value=20))
    return [
        Attack(
            time=draw(st.floats(
                min_value=0.0, max_value=110.0, allow_nan=False
            )),
            surface=draw(st.sampled_from(SURFACES)),
        )
        for _ in range(count)
    ]


def as_result(jobs) -> SimResult:
    return SimResult(duration=120.0, jobs=jobs, misses=[], busy_time={})


class TestIndexEqualsScan:
    @given(jobs=job_lists(), attacks=attack_lists())
    @settings(max_examples=200, deadline=None)
    def test_indexed_identical_to_scan(self, jobs, attacks):
        result = as_result(jobs)
        surface_map = build_surface_map(security_suite())
        for policy in DETECTION_POLICIES:
            index = DetectionIndex(result, policy=policy)
            for attack in attacks:
                assert index.detection_time(attack, surface_map) == (
                    detection_time(result, attack, surface_map, policy=policy)
                )

    @given(jobs=job_lists(), attacks=attack_lists())
    @settings(max_examples=50, deadline=None)
    def test_detection_times_uses_same_semantics(self, jobs, attacks):
        result = as_result(jobs)
        surface_map = build_surface_map(security_suite())
        for policy in DETECTION_POLICIES:
            assert detection_times(
                result, attacks, security_suite(), policy=policy
            ) == [
                detection_time(result, a, surface_map, policy=policy)
                for a in attacks
            ]

    def test_anchor_tolerance_edge(self):
        # A job released exactly at the attack instant (and one a hair
        # before, within tolerance) must qualify, as in the scan.
        jobs = [
            JobRecord(task="fs_check", release=10.0, deadline=60.0,
                      start=10.0, completion=12.0, core=0),
        ]
        result = as_result(jobs)
        surface_map = build_surface_map(security_suite())
        index = DetectionIndex(result)
        attack = Attack(time=10.0, surface="filesystem")
        assert index.detection_time(attack, surface_map) == 2.0
        within = Attack(time=10.0 + 5e-10, surface="filesystem")
        assert index.detection_time(within, surface_map) == pytest.approx(
            2.0 - 5e-10
        )
        beyond = Attack(time=10.1, surface="filesystem")
        assert math.isinf(index.detection_time(beyond, surface_map))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValidationError):
            DetectionIndex(as_result([]), policy="after-lunch")


class TestRandomizedAgainstScan:
    def test_large_random_case(self):
        rng = np.random.default_rng(2018)
        jobs = []
        for i in range(500):
            task = ("fs_check", "net_check", "rt_task")[int(rng.integers(3))]
            release = float(rng.uniform(0, 1000))
            start = release + float(rng.uniform(0, 3))
            completion = (
                start + float(rng.uniform(0.1, 8))
                if rng.random() > 0.1 else None
            )
            jobs.append(JobRecord(
                task=task, release=release, deadline=release + 100,
                start=start, completion=completion, core=0,
            ))
        result = SimResult(
            duration=1100.0, jobs=jobs, misses=[], busy_time={}
        )
        attacks = [
            Attack(time=float(rng.uniform(0, 1050)),
                   surface=SURFACES[int(rng.integers(3))])
            for _ in range(200)
        ]
        tasks = security_suite()
        surface_map = build_surface_map(tasks)
        for policy in DETECTION_POLICIES:
            assert detection_times(result, attacks, tasks, policy=policy) == [
                detection_time(result, a, surface_map, policy=policy)
                for a in attacks
            ]


class TestUndetectedBreakdown:
    def test_splits_censored_from_undetectable(self):
        surface_map = build_surface_map(security_suite())
        attacks = [
            Attack(time=1.0, surface="filesystem"),   # detected
            Attack(time=2.0, surface="filesystem"),   # censored
            Attack(time=3.0, surface="kernel"),       # undetectable
        ]
        times = [4.0, math.inf, math.inf]
        assert undetected_breakdown(times, attacks, surface_map) == (1, 1)

    def test_counts_are_exhaustive_over_infs(self):
        surface_map = build_surface_map(security_suite())
        attacks = [Attack(time=float(i), surface="kernel") for i in range(4)]
        times = [math.inf] * 4
        censored, undetectable = undetected_breakdown(
            times, attacks, surface_map
        )
        assert censored + undetectable == 4
        assert censored == 0  # kernel has no monitor

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            undetected_breakdown([1.0], [], {})
