"""Unit tests for attack injection and detection-time measurement."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet
from repro.sim.attacks import Attack, sample_attacks, surfaces_of
from repro.sim.detection import (
    build_surface_map,
    detection_time,
    detection_times,
)
from repro.sim.engine import SimTask, Simulator


def security_suite() -> TaskSet:
    return TaskSet(
        [
            SecurityTask(
                name="fs_check", wcet=2.0, period_des=20.0,
                period_max=200.0, surface="filesystem",
            ),
            SecurityTask(
                name="net_check", wcet=3.0, period_des=30.0,
                period_max=300.0, surface="network",
            ),
            SecurityTask(
                name="untagged", wcet=1.0, period_des=50.0,
                period_max=500.0,
            ),
        ]
    )


def simulate_suite(duration=100.0):
    tasks = [
        SimTask(name="fs_check", wcet=2.0, period=20.0, priority=0, core=0,
                kind="security", surface="filesystem"),
        SimTask(name="net_check", wcet=3.0, period=30.0, priority=1, core=0,
                kind="security", surface="network"),
    ]
    return Simulator(tasks, num_cores=1, duration=duration).run()


class TestAttack:
    def test_valid(self):
        attack = Attack(time=5.0, surface="filesystem")
        assert attack.time == 5.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValidationError):
            Attack(time=-1.0, surface="x")

    def test_rejects_empty_surface(self):
        with pytest.raises(ValidationError):
            Attack(time=1.0, surface="")


class TestSampling:
    def test_surfaces_of_unique_in_order(self):
        assert surfaces_of(security_suite()) == ["filesystem", "network"]

    def test_sample_attacks_window_and_surfaces(self, rng):
        attacks = sample_attacks(
            50, (10.0, 20.0), ["a", "b"], rng=rng
        )
        assert len(attacks) == 50
        assert all(10.0 <= a.time <= 20.0 for a in attacks)
        assert {a.surface for a in attacks} <= {"a", "b"}

    def test_sample_attacks_validation(self, rng):
        with pytest.raises(ValidationError):
            sample_attacks(-1, (0.0, 1.0), ["a"], rng=rng)
        with pytest.raises(ValidationError):
            sample_attacks(1, (5.0, 5.0), ["a"], rng=rng)
        with pytest.raises(ValidationError):
            sample_attacks(1, (0.0, 1.0), [], rng=rng)

    def test_sample_attacks_seedable(self):
        a = sample_attacks(5, (0.0, 10.0), ["x"], rng=7)
        b = sample_attacks(5, (0.0, 10.0), ["x"], rng=7)
        assert a == b


class TestDetection:
    def test_surface_map(self):
        mapping = build_surface_map(security_suite())
        assert mapping == {
            "filesystem": ["fs_check"],
            "network": ["net_check"],
        }

    def test_detection_by_next_release(self):
        result = simulate_suite()
        surface_map = build_surface_map(security_suite())
        # fs_check jobs: release 0 done 2, release 20 done 22, ...
        attack = Attack(time=5.0, surface="filesystem")
        dt = detection_time(result, attack, surface_map)
        # First job released after t=5 is the one at t=20 → done 22.
        assert dt == pytest.approx(22.0 - 5.0)

    def test_attack_at_release_instant_counts(self):
        result = simulate_suite()
        surface_map = build_surface_map(security_suite())
        attack = Attack(time=20.0, surface="filesystem")
        dt = detection_time(result, attack, surface_map)
        assert dt == pytest.approx(2.0)

    def test_start_after_policy_can_be_faster(self):
        # A job released before but started after the attack counts
        # under start-after, not under release-after.
        tasks = [
            SimTask(name="blocker", wcet=6.0, period=50.0, priority=0,
                    core=0),
            SimTask(name="fs_check", wcet=2.0, period=20.0, priority=1,
                    core=0, kind="security", surface="filesystem"),
        ]
        result = Simulator(tasks, num_cores=1, duration=100.0).run()
        surface_map = {"filesystem": ["fs_check"]}
        attack = Attack(time=1.0, surface="filesystem")
        release_after = detection_time(result, attack, surface_map)
        start_after = detection_time(
            result, attack, surface_map, policy="start-after"
        )
        # fs_check job 0: released 0 (before attack) but starts at 6.
        assert start_after == pytest.approx(8.0 - 1.0)
        assert release_after == pytest.approx(22.0 - 1.0)

    def test_unmonitored_surface_never_detected(self):
        result = simulate_suite()
        attack = Attack(time=5.0, surface="kernel")
        assert math.isinf(
            detection_time(result, attack, build_surface_map(security_suite()))
        )

    def test_attack_too_late_never_detected(self):
        result = simulate_suite(duration=50.0)
        surface_map = build_surface_map(security_suite())
        attack = Attack(time=49.0, surface="filesystem")
        assert math.isinf(detection_time(result, attack, surface_map))

    def test_detection_times_bulk(self, rng):
        result = simulate_suite()
        attacks = sample_attacks(
            10, (0.0, 40.0), ["filesystem", "network"], rng=rng
        )
        times = detection_times(result, attacks, security_suite())
        assert len(times) == 10
        assert all(t > 0 for t in times)

    def test_unknown_policy_rejected(self):
        result = simulate_suite()
        with pytest.raises(ValidationError):
            detection_time(
                result,
                Attack(time=1.0, surface="filesystem"),
                {"filesystem": ["fs_check"]},
                policy="psychic",
            )
