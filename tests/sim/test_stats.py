"""Unit tests for simulation response-time statistics."""

from __future__ import annotations

import math

import pytest

from repro.sim.engine import SimTask, Simulator
from repro.sim.stats import (
    all_response_stats,
    response_stats,
    summarize_response_stats,
)


def simulate(tasks, duration=100.0, cores=1):
    return Simulator(tasks, num_cores=cores, duration=duration).run()


class TestResponseStats:
    def test_isolated_task(self):
        task = SimTask(name="t", wcet=2.0, period=10.0, priority=0, core=0)
        stats = response_stats(simulate([task]), "t")
        assert stats.jobs == 10
        assert stats.best == pytest.approx(2.0)
        assert stats.worst == pytest.approx(2.0)
        assert stats.mean == pytest.approx(2.0)
        assert stats.observed_all

    def test_interference_spreads_distribution(self):
        hi = SimTask(name="hi", wcet=2.0, period=7.0, priority=0, core=0)
        lo = SimTask(name="lo", wcet=3.0, period=20.0, priority=1, core=0)
        stats = response_stats(simulate([hi, lo], duration=700.0), "lo")
        assert stats.best >= 3.0
        assert stats.worst > stats.best  # phases differ over the horizon
        assert stats.best <= stats.mean <= stats.worst

    def test_worst_case_at_synchronous_release(self):
        from repro.analysis.rta import response_time

        hi = SimTask(name="hi", wcet=2.0, period=7.0, priority=0, core=0)
        lo = SimTask(name="lo", wcet=3.0, period=20.0, priority=1, core=0)
        stats = response_stats(simulate([hi, lo], duration=1400.0), "lo")
        bound = response_time(3.0, [(2.0, 7.0)])
        assert stats.worst <= bound + 1e-9
        # The critical instant occurs at t = 0, so the bound is attained.
        assert stats.worst == pytest.approx(bound)

    def test_unfinished_jobs_counted(self):
        task = SimTask(name="t", wcet=9.0, period=10.0, priority=0, core=0)
        stats = response_stats(simulate([task], duration=15.0), "t")
        assert stats.jobs == 2
        assert stats.unfinished == 1
        assert not stats.observed_all
        assert stats.worst == pytest.approx(9.0)

    def test_task_with_no_finished_jobs(self):
        task = SimTask(name="t", wcet=9.0, period=10.0, priority=0, core=0)
        stats = response_stats(simulate([task], duration=5.0), "t")
        assert stats.unfinished == 1
        assert math.isinf(stats.worst)

    def test_unknown_task_empty(self):
        task = SimTask(name="t", wcet=1.0, period=10.0, priority=0, core=0)
        stats = response_stats(simulate([task]), "ghost")
        assert stats.jobs == 0


class TestAllResponseStats:
    def test_covers_every_task(self):
        tasks = [
            SimTask(name="a", wcet=1.0, period=10.0, priority=0, core=0),
            SimTask(name="b", wcet=2.0, period=20.0, priority=1, core=0),
        ]
        stats = all_response_stats(simulate(tasks))
        assert set(stats) == {"a", "b"}

    def test_saturated_task_does_not_poison_summary(self):
        """A task with no finished jobs (its per-task worst is ``inf``)
        is reported as saturated instead of flooding the cross-task
        extrema and mean with infinities."""
        ok = SimTask(name="ok", wcet=1.0, period=10.0, priority=0, core=0)
        # Never finishes within the horizon on its own core.
        stuck = SimTask(name="stuck", wcet=50.0, period=60.0,
                        priority=1, core=1)
        stats = all_response_stats(simulate([ok, stuck], duration=40.0,
                                            cores=2))
        assert math.isinf(stats["stuck"].worst)
        summary = summarize_response_stats(stats.values())
        assert summary.tasks == 2
        assert summary.observed_tasks == 1
        assert summary.saturated_tasks == 1
        assert summary.observed_any
        assert summary.best == pytest.approx(1.0)
        assert summary.worst == pytest.approx(1.0)
        assert summary.mean == pytest.approx(1.0)
        assert math.isfinite(summary.mean)

    def test_all_saturated_summary_is_explicit(self):
        stuck = SimTask(name="stuck", wcet=50.0, period=60.0,
                        priority=0, core=0)
        summary = summarize_response_stats(
            all_response_stats(simulate([stuck], duration=40.0)).values()
        )
        assert summary.observed_tasks == 0
        assert not summary.observed_any
        assert summary.saturated_tasks == 1
        assert math.isinf(summary.worst)
        assert math.isinf(summary.mean)

    def test_mean_is_job_weighted(self):
        fast = SimTask(name="fast", wcet=1.0, period=10.0,
                       priority=0, core=0)
        slow = SimTask(name="slow", wcet=3.0, period=50.0,
                       priority=1, core=1)
        summary = summarize_response_stats(
            all_response_stats(simulate([fast, slow], duration=100.0,
                                        cores=2)).values()
        )
        # 10 jobs at 1.0 plus 2 jobs at 3.0, weighted by job count.
        assert summary.jobs == 12
        assert summary.mean == pytest.approx((10 * 1.0 + 2 * 3.0) / 12)

    def test_consistency_with_analysis_on_allocated_system(
        self, loaded_system
    ):
        """Observed response times never exceed the analytic bound."""
        from repro.analysis.interference import InterferenceEnv
        from repro.analysis.rta import response_time
        from repro.core.hydra import HydraAllocator
        from repro.sim.runner import simulate_allocation

        allocation = HydraAllocator().allocate(loaded_system)
        result = simulate_allocation(
            loaded_system, allocation, duration=12_000.0
        )
        stats = all_response_stats(result)
        for core in loaded_system.platform:
            on_core = allocation.tasks_on(core)
            for i, assignment in enumerate(on_core):
                env = InterferenceEnv.on_core(
                    loaded_system.rt_partition.tasks_on(core),
                    [(a.task, a.period) for a in on_core[:i]],
                )
                bound = response_time(
                    assignment.task.wcet, env.interferers
                )
                observed = stats[assignment.task.name]
                if observed.jobs - observed.unfinished > 0:
                    assert observed.worst <= bound + 1e-6
