"""Unit tests for sub-WCET execution-time variation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.engine import SimTask, Simulator


class TestExecutionFactor:
    def test_default_runs_exactly_wcet(self):
        task = SimTask(name="t", wcet=2.0, period=10.0, priority=0, core=0)
        result = Simulator([task], num_cores=1, duration=100.0, rng=1).run()
        assert result.busy_time[0] == pytest.approx(20.0)

    def test_varied_execution_shortens_busy_time(self):
        task = SimTask(
            name="t", wcet=2.0, period=10.0, priority=0, core=0,
            execution_factor=0.5,
        )
        result = Simulator([task], num_cores=1, duration=1000.0, rng=1).run()
        busy = result.busy_time[0]
        # 100 jobs, each in [1, 2] → busy in [100, 200], mean ≈ 150.
        assert 100.0 <= busy <= 200.0
        assert busy < 200.0 - 1e-6

    def test_every_job_within_bounds(self):
        task = SimTask(
            name="t", wcet=4.0, period=10.0, priority=0, core=0,
            execution_factor=0.25,
        )
        result = Simulator(
            [task], num_cores=1, duration=500.0, rng=2,
            collect_slices=True,
        ).run()
        # Per-job execution: reconstruct from response times of the
        # isolated task (no interference → response = execution).
        for job in result.jobs:
            if job.response_time is not None:
                assert 1.0 - 1e-9 <= job.response_time <= 4.0 + 1e-9

    def test_responses_never_exceed_worst_case(self):
        hi = SimTask(
            name="hi", wcet=2.0, period=7.0, priority=0, core=0,
            execution_factor=0.5,
        )
        lo = SimTask(
            name="lo", wcet=3.0, period=20.0, priority=1, core=0,
            execution_factor=0.5,
        )
        result = Simulator(
            [hi, lo], num_cores=1, duration=2000.0, rng=3
        ).run()
        from repro.analysis.rta import response_time

        bound = response_time(3.0, [(2.0, 7.0)])
        for job in result.completed_jobs_of("lo"):
            assert job.response_time <= bound + 1e-9

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValidationError):
            SimTask(
                name="t", wcet=1.0, period=10.0, priority=0, core=0,
                execution_factor=0.0,
            )
        with pytest.raises(ValidationError):
            SimTask(
                name="t", wcet=1.0, period=10.0, priority=0, core=0,
                execution_factor=1.5,
            )

    def test_detection_faster_with_lighter_execution(self, loaded_system):
        from repro.core.hydra import HydraAllocator
        from repro.sim.runner import simulate_allocation
        from repro.sim.stats import all_response_stats

        allocation = HydraAllocator().allocate(loaded_system)
        worst = simulate_allocation(
            loaded_system, allocation, duration=6000.0, rng=4
        )
        light = simulate_allocation(
            loaded_system, allocation, duration=6000.0, rng=4,
            execution_factor=0.3,
        )
        worst_stats = all_response_stats(worst)
        light_stats = all_response_stats(light)
        for name in loaded_system.security_tasks.names:
            if light_stats[name].observed_all:
                assert light_stats[name].mean <= worst_stats[name].mean + 1e-6
