"""Unit tests for the system → simulator bridge."""

from __future__ import annotations

import pytest

from repro.core.hydra import HydraAllocator
from repro.errors import ValidationError
from repro.sim.runner import build_sim_tasks, simulate_allocation


@pytest.fixture
def allocated(loaded_system):
    allocation = HydraAllocator().allocate(loaded_system)
    assert allocation.schedulable
    return loaded_system, allocation


class TestBuildSimTasks:
    def test_counts_and_kinds(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(system, allocation)
        rt = [t for t in tasks if t.kind == "rt"]
        sec = [t for t in tasks if t.kind == "security"]
        assert len(rt) == len(system.rt_tasks)
        assert len(sec) == len(system.security_tasks)

    def test_security_below_all_rt_priorities(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(system, allocation)
        max_rt = max(t.priority for t in tasks if t.kind == "rt")
        min_sec = min(t.priority for t in tasks if t.kind == "security")
        assert min_sec > max_rt

    def test_security_periods_match_allocation(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(system, allocation)
        periods = allocation.periods()
        for t in tasks:
            if t.kind == "security":
                assert t.period == pytest.approx(periods[t.name])
                assert t.deadline == pytest.approx(periods[t.name])

    def test_cores_match_partition_and_allocation(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(system, allocation)
        cores = allocation.cores()
        for t in tasks:
            if t.kind == "security":
                assert t.core == cores[t.name]
            else:
                assert t.core == system.rt_partition.core_of(t.name)

    def test_global_mode_unbinds_security(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(system, allocation, security_mode="global")
        assert all(
            t.core is None for t in tasks if t.kind == "security"
        )
        assert all(t.core is not None for t in tasks if t.kind == "rt")

    def test_non_preemptible_flag(self, allocated):
        system, allocation = allocated
        tasks = build_sim_tasks(
            system, allocation, preemptible_security=False
        )
        assert all(
            not t.preemptible for t in tasks if t.kind == "security"
        )

    def test_unschedulable_allocation_rejected(self, loaded_system):
        from repro.core.allocator import Allocation

        bad = Allocation(scheme="x", schedulable=False, failed_task="s0")
        with pytest.raises(ValidationError):
            build_sim_tasks(loaded_system, bad)

    def test_unknown_precedence_rejected(self, allocated):
        system, allocation = allocated
        with pytest.raises(ValidationError):
            build_sim_tasks(
                system, allocation, precedence={"s0": ("ghost",)}
            )

    def test_bad_mode_rejected(self, allocated):
        system, allocation = allocated
        with pytest.raises(ValidationError):
            build_sim_tasks(system, allocation, security_mode="quantum")


class TestSimulateAllocation:
    def test_no_deadline_misses_for_admitted_system(self, allocated):
        system, allocation = allocated
        result = simulate_allocation(system, allocation, duration=3000.0)
        assert not result.missed_any_deadline

    def test_prune_idle_cores_preserves_security_schedule(self, allocated):
        system, allocation = allocated
        full = simulate_allocation(
            system, allocation, duration=2000.0
        )
        pruned = simulate_allocation(
            system, allocation, duration=2000.0, prune_idle_cores=True
        )
        for name in system.security_tasks.names:
            full_jobs = [
                (j.release, j.completion) for j in full.completed_jobs_of(name)
            ]
            pruned_jobs = [
                (j.release, j.completion)
                for j in pruned.completed_jobs_of(name)
            ]
            assert full_jobs == pytest.approx(pruned_jobs)

    def test_prune_rejected_in_global_mode(self, allocated):
        system, allocation = allocated
        with pytest.raises(ValidationError):
            simulate_allocation(
                system,
                allocation,
                duration=100.0,
                security_mode="global",
                prune_idle_cores=True,
            )

    def test_global_mode_completes_no_later_on_average(self, allocated):
        # Work-conserving migration can only help security tasks (they
        # may grab any idle core instead of waiting for their own).
        system, allocation = allocated
        part = simulate_allocation(system, allocation, duration=4000.0)
        glob = simulate_allocation(
            system, allocation, duration=4000.0, security_mode="global"
        )

        def mean_response(result):
            responses = [
                j.response_time
                for name in system.security_tasks.names
                for j in result.completed_jobs_of(name)
            ]
            return sum(responses) / len(responses)

        assert mean_response(glob) <= mean_response(part) + 1e-6
