"""Unit tests for the discrete-event scheduling engine.

Schedules small enough to verify by hand, plus conservation laws.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.engine import SimTask, Simulator


def run(tasks, cores=1, duration=100.0, **kwargs):
    return Simulator(tasks, num_cores=cores, duration=duration, **kwargs).run()


class TestSingleTask:
    def test_periodic_releases(self):
        task = SimTask(name="t", wcet=2.0, period=10.0, priority=0, core=0)
        result = run([task], duration=35.0)
        jobs = result.jobs_of("t")
        assert [j.release for j in jobs] == [0.0, 10.0, 20.0, 30.0]

    def test_runs_immediately_when_alone(self):
        task = SimTask(name="t", wcet=2.0, period=10.0, priority=0, core=0)
        result = run([task], duration=20.0)
        first = result.jobs_of("t")[0]
        assert first.start == 0.0
        assert first.completion == pytest.approx(2.0)
        assert first.met_deadline

    def test_busy_time_accounting(self):
        task = SimTask(name="t", wcet=2.0, period=10.0, priority=0, core=0)
        result = run([task], duration=100.0)
        assert result.busy_time[0] == pytest.approx(20.0)
        assert result.utilization_of_core(0) == pytest.approx(0.2)

    def test_unfinished_job_at_horizon(self):
        task = SimTask(name="t", wcet=8.0, period=10.0, priority=0, core=0)
        result = run([task], duration=15.0)
        jobs = result.jobs_of("t")
        assert jobs[0].finished
        assert not jobs[1].finished
        assert jobs[1].completion is None


class TestPreemption:
    def test_high_priority_preempts(self):
        hi = SimTask(name="hi", wcet=2.0, period=10.0, priority=0, core=0)
        lo = SimTask(name="lo", wcet=6.0, period=20.0, priority=1, core=0)
        result = run([hi, lo], duration=20.0, collect_slices=True)
        lo_first = result.jobs_of("lo")[0]
        # lo runs 2→10 minus hi's second instance at 10? hi releases at
        # 0 and 10; lo needs 6 units: 2..8 → completes before t=10.
        assert lo_first.start == pytest.approx(2.0)
        assert lo_first.completion == pytest.approx(8.0)

    def test_preempted_job_resumes(self):
        hi = SimTask(name="hi", wcet=3.0, period=10.0, priority=0, core=0)
        lo = SimTask(name="lo", wcet=9.0, period=30.0, priority=1, core=0)
        result = run([hi, lo], duration=30.0)
        lo_first = result.jobs_of("lo")[0]
        # Timeline: hi 0-3, lo 3-10, hi 10-13, lo 13-15 → completes 15.
        assert lo_first.completion == pytest.approx(15.0)

    def test_response_time_matches_rta(self):
        # Compare the simulator against analytical RTA for the
        # synchronous release pattern (which the simulator produces).
        from repro.analysis.rta import response_time

        hi = SimTask(name="hi", wcet=1.0, period=4.0, priority=0, core=0)
        mid = SimTask(name="mid", wcet=2.0, period=6.0, priority=1, core=0)
        lo = SimTask(name="lo", wcet=3.0, period=12.0, priority=2, core=0)
        result = run([hi, mid, lo], duration=12.0)
        lo_first = result.jobs_of("lo")[0]
        expected = response_time(3.0, [(1.0, 4.0), (2.0, 6.0)])
        assert lo_first.completion == pytest.approx(expected)

    def test_no_misses_for_schedulable_set(self):
        hi = SimTask(name="hi", wcet=1.0, period=4.0, priority=0, core=0)
        mid = SimTask(name="mid", wcet=2.0, period=6.0, priority=1, core=0)
        lo = SimTask(name="lo", wcet=3.0, period=12.0, priority=2, core=0)
        result = run([hi, mid, lo], duration=120.0)
        assert not result.missed_any_deadline

    def test_overload_produces_misses(self):
        a = SimTask(name="a", wcet=3.0, period=4.0, priority=0, core=0)
        b = SimTask(name="b", wcet=3.0, period=6.0, priority=1, core=0)
        result = run([a, b], duration=60.0)
        assert result.missed_any_deadline
        assert any(m.task == "b" for m in result.misses)


class TestMultiCore:
    def test_cores_are_independent(self):
        a = SimTask(name="a", wcet=5.0, period=10.0, priority=0, core=0)
        b = SimTask(name="b", wcet=5.0, period=10.0, priority=1, core=1)
        result = run([a, b], cores=2, duration=10.0)
        assert result.jobs_of("a")[0].completion == pytest.approx(5.0)
        assert result.jobs_of("b")[0].completion == pytest.approx(5.0)

    def test_job_records_core(self):
        a = SimTask(name="a", wcet=1.0, period=10.0, priority=0, core=1)
        result = run([a], cores=2, duration=10.0)
        assert result.jobs_of("a")[0].core == 1

    def test_invalid_core_rejected(self):
        task = SimTask(name="a", wcet=1.0, period=10.0, priority=0, core=3)
        with pytest.raises(ValidationError):
            Simulator([task], num_cores=2, duration=10.0)


class TestNonPreemptive:
    def test_non_preemptible_blocks_higher_priority(self):
        hi = SimTask(
            name="hi", wcet=2.0, period=10.0, priority=0, core=0, offset=1.0
        )
        lo = SimTask(
            name="lo", wcet=5.0, period=20.0, priority=1, core=0,
            preemptible=False,
        )
        result = run([hi, lo], duration=20.0)
        # lo starts at 0 and cannot be preempted: hi (released at 1)
        # waits until 5.
        assert result.jobs_of("lo")[0].completion == pytest.approx(5.0)
        assert result.jobs_of("hi")[0].start == pytest.approx(5.0)

    def test_preemptible_version_for_contrast(self):
        hi = SimTask(
            name="hi", wcet=2.0, period=10.0, priority=0, core=0, offset=1.0
        )
        lo = SimTask(name="lo", wcet=5.0, period=20.0, priority=1, core=0)
        result = run([hi, lo], duration=20.0)
        assert result.jobs_of("hi")[0].start == pytest.approx(1.0)
        assert result.jobs_of("lo")[0].completion == pytest.approx(7.0)


class TestPrecedence:
    def test_dependent_waits_for_fresh_predecessor(self):
        pred = SimTask(
            name="pred", wcet=2.0, period=10.0, priority=0, core=0
        )
        dep = SimTask(
            name="dep", wcet=1.0, period=10.0, priority=1, core=0,
            predecessors=("pred",),
        )
        result = run([pred, dep], duration=30.0)
        first = result.jobs_of("dep")[0]
        # dep released at 0 may only start once pred completed (t=2).
        assert first.start >= 2.0 - 1e-9

    def test_lower_priority_can_run_during_block(self):
        pred = SimTask(
            name="pred", wcet=2.0, period=20.0, priority=0, core=0,
            offset=5.0,
        )
        dep = SimTask(
            name="dep", wcet=1.0, period=20.0, priority=1, core=0,
            predecessors=("pred",),
        )
        other = SimTask(
            name="other", wcet=3.0, period=20.0, priority=2, core=0
        )
        result = run([pred, dep, other], duration=20.0)
        # dep blocked until pred's first completion at t=7; "other"
        # (lower priority) uses the idle window first.
        assert result.jobs_of("other")[0].start == pytest.approx(0.0)
        assert result.jobs_of("dep")[0].start >= 7.0 - 1e-9

    def test_unknown_predecessor_rejected(self):
        dep = SimTask(
            name="dep", wcet=1.0, period=10.0, priority=0, core=0,
            predecessors=("ghost",),
        )
        with pytest.raises(ValidationError):
            Simulator([dep], num_cores=1, duration=10.0)


class TestMigration:
    def test_migrating_task_uses_idle_core(self):
        bound = SimTask(name="rt", wcet=8.0, period=10.0, priority=0, core=0)
        roam = SimTask(
            name="roam", wcet=4.0, period=20.0, priority=1, core=None
        )
        result = run([bound, roam], cores=2, duration=20.0)
        first = result.jobs_of("roam")[0]
        # Core 0 busy until 8; core 1 idle → roam runs there at once.
        assert first.start == pytest.approx(0.0)
        assert first.core == 1

    def test_migrating_task_resumes_after_preemption(self):
        # One core only: RT preempts the migrating job, which resumes.
        bound = SimTask(
            name="rt", wcet=2.0, period=10.0, priority=0, core=0, offset=1.0
        )
        roam = SimTask(
            name="roam", wcet=4.0, period=20.0, priority=1, core=None
        )
        # roam runs 0–1, rt 1–3, roam resumes 3–6 → completes at 6.
        result = run([bound, roam], cores=1, duration=20.0)
        first = result.jobs_of("roam")[0]
        assert first.completion == pytest.approx(6.0)

    def test_single_job_never_runs_twice_at_once(self):
        # Conservation: total slice time equals WCET per completed job.
        from repro.sim.trace import busy_time_by_task

        bound0 = SimTask(name="r0", wcet=5.0, period=10.0, priority=0, core=0)
        bound1 = SimTask(name="r1", wcet=5.0, period=10.0, priority=1, core=1)
        roam = SimTask(
            name="roam", wcet=6.0, period=30.0, priority=2, core=None
        )
        result = run(
            [bound0, bound1, roam], cores=2, duration=30.0,
            collect_slices=True,
        )
        totals = busy_time_by_task(result.slices)
        completed = len(result.completed_jobs_of("roam"))
        assert totals["roam"] == pytest.approx(6.0 * completed, abs=1e-6)
        # No overlapping slices of roam across cores.
        roam_slices = sorted(
            (s for s in result.slices if s.task == "roam"),
            key=lambda s: s.start,
        )
        for earlier, later in zip(roam_slices, roam_slices[1:]):
            assert earlier.end <= later.start + 1e-9


class TestJitter:
    def test_sporadic_gaps_at_least_period(self, rng):
        task = SimTask(
            name="t", wcet=1.0, period=10.0, priority=0, core=0,
            release_jitter=0.5,
        )
        result = Simulator(
            [task], num_cores=1, duration=300.0, rng=rng
        ).run()
        releases = [j.release for j in result.jobs_of("t")]
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(gap >= 10.0 - 1e-9 for gap in gaps)
        assert all(gap <= 15.0 + 1e-9 for gap in gaps)
        assert any(gap > 10.0 + 1e-6 for gap in gaps)

    def test_deterministic_without_jitter(self):
        task = SimTask(name="t", wcet=1.0, period=10.0, priority=0, core=0)
        a = Simulator([task], num_cores=1, duration=100.0, rng=1).run()
        b = Simulator([task], num_cores=1, duration=100.0, rng=2).run()
        assert [j.release for j in a.jobs] == [j.release for j in b.jobs]


class TestValidation:
    def test_duplicate_names_rejected(self):
        tasks = [
            SimTask(name="t", wcet=1.0, period=10.0, priority=0, core=0),
            SimTask(name="t", wcet=1.0, period=10.0, priority=1, core=0),
        ]
        with pytest.raises(ValidationError):
            Simulator(tasks, num_cores=1, duration=10.0)

    def test_duplicate_priorities_rejected(self):
        tasks = [
            SimTask(name="a", wcet=1.0, period=10.0, priority=0, core=0),
            SimTask(name="b", wcet=1.0, period=10.0, priority=0, core=0),
        ]
        with pytest.raises(ValidationError):
            Simulator(tasks, num_cores=1, duration=10.0)

    def test_bad_duration_rejected(self):
        task = SimTask(name="t", wcet=1.0, period=10.0, priority=0, core=0)
        with pytest.raises(ValidationError):
            Simulator([task], num_cores=1, duration=0.0)

    def test_bad_task_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SimTask(name="t", wcet=0.0, period=10.0, priority=0, core=0)
        with pytest.raises(ValidationError):
            SimTask(
                name="t", wcet=1.0, period=10.0, priority=0, core=0,
                release_jitter=-0.1,
            )
        with pytest.raises(ValidationError):
            SimTask(name="t", wcet=1.0, period=10.0, priority=0, core=0,
                    kind="alien")


class TestConservationLaws:
    def test_busy_time_equals_slice_time(self):
        tasks = [
            SimTask(name="a", wcet=2.0, period=7.0, priority=0, core=0),
            SimTask(name="b", wcet=3.0, period=13.0, priority=1, core=0),
        ]
        result = run(tasks, duration=91.0, collect_slices=True)
        slice_total = sum(s.length for s in result.slices)
        assert slice_total == pytest.approx(result.busy_time[0], abs=1e-6)

    def test_completed_jobs_receive_exactly_wcet(self):
        from repro.sim.trace import busy_time_by_task

        tasks = [
            SimTask(name="a", wcet=2.0, period=7.0, priority=0, core=0),
            SimTask(name="b", wcet=3.0, period=13.0, priority=1, core=0),
        ]
        result = run(tasks, duration=91.0, collect_slices=True)
        totals = busy_time_by_task(result.slices)
        for name, wcet in (("a", 2.0), ("b", 3.0)):
            finished = len(result.completed_jobs_of(name))
            unfinished = [
                j for j in result.jobs_of(name) if not j.finished
            ]
            partial = sum(
                0.0 if j.start is None else 1.0 for j in unfinished
            )
            assert totals[name] >= wcet * finished - 1e-6
            if partial == 0:
                assert totals[name] == pytest.approx(
                    wcet * finished, abs=1e-6
                )
