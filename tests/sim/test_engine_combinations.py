"""Engine tests for feature combinations and offsets.

The individual features (preemption, precedence, migration, jitter,
execution variation) are covered in ``test_engine.py``; these tests pin
the *interactions*, which is where scheduling engines usually break.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import SimTask, Simulator


def run(tasks, cores=1, duration=100.0, **kwargs):
    return Simulator(tasks, num_cores=cores, duration=duration, **kwargs).run()


class TestOffsets:
    def test_first_release_at_offset(self):
        task = SimTask(
            name="t", wcet=1.0, period=10.0, priority=0, core=0, offset=4.0
        )
        result = run([task], duration=30.0)
        assert [j.release for j in result.jobs_of("t")] == [4.0, 14.0, 24.0]

    def test_offset_shifts_deadline(self):
        task = SimTask(
            name="t", wcet=1.0, period=10.0, priority=0, core=0, offset=4.0
        )
        result = run([task], duration=20.0)
        assert result.jobs_of("t")[0].deadline == pytest.approx(14.0)

    def test_asynchronous_releases_reduce_interference(self):
        # Synchronous: lo waits for hi. With hi offset past lo's burst,
        # lo runs immediately.
        hi_sync = SimTask(name="hi", wcet=3.0, period=10.0, priority=0,
                          core=0)
        hi_off = SimTask(name="hi", wcet=3.0, period=10.0, priority=0,
                         core=0, offset=5.0)
        lo = SimTask(name="lo", wcet=2.0, period=10.0, priority=1, core=0)
        sync = run([hi_sync, lo], duration=10.0)
        offset = run([hi_off, lo], duration=10.0)
        assert sync.jobs_of("lo")[0].start == pytest.approx(3.0)
        assert offset.jobs_of("lo")[0].start == pytest.approx(0.0)


class TestPrecedencePlusMigration:
    def test_dependent_migrating_job_waits_then_runs_anywhere(self):
        pred = SimTask(
            name="pred", wcet=2.0, period=20.0, priority=0, core=0
        )
        blocker = SimTask(
            name="blocker", wcet=6.0, period=20.0, priority=1, core=0
        )
        dep = SimTask(
            name="dep", wcet=1.0, period=20.0, priority=2, core=None,
            predecessors=("pred",),
        )
        result = run([pred, blocker, dep], cores=2, duration=20.0)
        job = result.jobs_of("dep")[0]
        # pred completes at 2; dep then starts on the idle core 1 even
        # though core 0 is still busy with blocker.
        assert job.start == pytest.approx(2.0)
        assert job.core == 1

    def test_precedence_respected_across_cores(self):
        pred = SimTask(
            name="pred", wcet=5.0, period=20.0, priority=0, core=0
        )
        dep = SimTask(
            name="dep", wcet=1.0, period=20.0, priority=1, core=None,
            predecessors=("pred",),
        )
        result = run([pred, dep], cores=2, duration=20.0)
        # Core 1 is idle the whole time, but dep must still wait for
        # pred's completion at t = 5.
        assert result.jobs_of("dep")[0].start == pytest.approx(5.0)


class TestNonPreemptiveMigration:
    def test_non_preemptive_migrating_job_finishes_in_place(self):
        roam = SimTask(
            name="roam", wcet=4.0, period=20.0, priority=1, core=None,
            preemptible=False,
        )
        rt = SimTask(
            name="rt", wcet=2.0, period=10.0, priority=0, core=0,
            offset=1.0,
        )
        result = run([rt, roam], cores=1, duration=20.0)
        # roam starts at 0 and, being non-preemptible, completes at 4;
        # rt (released at 1) is blocked until then.
        assert result.jobs_of("roam")[0].completion == pytest.approx(4.0)
        assert result.jobs_of("rt")[0].start == pytest.approx(4.0)

    def test_non_preemptive_slices_are_contiguous(self):
        from repro.sim.trace import merge_slices

        roam = SimTask(
            name="roam", wcet=4.0, period=10.0, priority=1, core=None,
            preemptible=False,
        )
        rt = SimTask(
            name="rt", wcet=2.0, period=5.0, priority=0, core=0
        )
        result = run(
            [rt, roam], cores=2, duration=40.0, collect_slices=True
        )
        merged = [
            s for s in merge_slices(result.slices) if s.task == "roam"
        ]
        completed = len(result.completed_jobs_of("roam"))
        # One contiguous slice per completed job.
        assert len([s for s in merged if s.length >= 4.0 - 1e-9]) == (
            completed
        )


class TestJitterPlusVariation:
    def test_combined_sporadic_and_sub_wcet(self):
        task = SimTask(
            name="t", wcet=2.0, period=10.0, priority=0, core=0,
            release_jitter=0.4, execution_factor=0.5,
        )
        result = run([task], duration=2000.0)
        releases = [j.release for j in result.jobs_of("t")]
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(10.0 - 1e-9 <= g <= 14.0 + 1e-9 for g in gaps)
        for job in result.jobs_of("t"):
            if job.response_time is not None:
                assert 1.0 - 1e-9 <= job.response_time <= 2.0 + 1e-9

    def test_no_misses_with_lighter_execution(self, loaded_system):
        # If the worst-case admitted system never misses, any sub-WCET
        # run of the same system must not miss either.
        from repro.core.hydra import HydraAllocator
        from repro.sim.runner import simulate_allocation

        allocation = HydraAllocator().allocate(loaded_system)
        result = simulate_allocation(
            loaded_system, allocation, duration=8000.0, rng=7,
            execution_factor=0.4,
        )
        assert not result.missed_any_deadline
