"""Unit tests for system/task-set transformations."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet
from repro.model.transform import (
    scale_security_wcets,
    with_extra_cores,
    with_period_max,
    with_security_task,
    with_security_tasks,
)


class TestWithSecurityTasks:
    def test_swaps_workload(self, two_core_system):
        new = TaskSet(
            [
                SecurityTask(
                    name="other", wcet=1.0, period_des=50.0,
                    period_max=500.0,
                )
            ]
        )
        transformed = with_security_tasks(two_core_system, new)
        assert transformed.security_tasks.names == ("other",)
        assert transformed.rt_partition is two_core_system.rt_partition

    def test_original_untouched(self, two_core_system):
        with_security_tasks(two_core_system, TaskSet())
        assert len(two_core_system.security_tasks) == 2

    def test_stale_weights_dropped(self, rt_pair, security_pair):
        from repro.model import Partition, Platform, SystemModel

        platform = Platform(2)
        system = SystemModel(
            platform=platform,
            rt_partition=Partition(
                platform, rt_pair, {"rt_fast": 0, "rt_slow": 1}
            ),
            security_tasks=security_pair,
            weights={"sec_hi": 5.0},
        )
        transformed = with_security_tasks(
            system, [security_pair["sec_lo"]]
        )
        assert "sec_hi" not in transformed.weights


class TestScaleSecurityWcets:
    def test_scales_all(self, two_core_system):
        scaled = scale_security_wcets(two_core_system, 0.5)
        for name in two_core_system.security_tasks.names:
            assert scaled.security_tasks[name].wcet == pytest.approx(
                0.5 * two_core_system.security_tasks[name].wcet
            )

    def test_rejects_overflowing_scale(self, two_core_system):
        # sec_hi: C = 5, T_des = 100 → factor 21 pushes C past T_des.
        with pytest.raises(ValidationError):
            scale_security_wcets(two_core_system, 21.0)

    def test_rejects_nonpositive_factor(self, two_core_system):
        with pytest.raises(ValidationError):
            scale_security_wcets(two_core_system, 0.0)

    def test_identity(self, two_core_system):
        assert (
            scale_security_wcets(two_core_system, 1.0).security_tasks
            == two_core_system.security_tasks
        )


class TestWithSecurityTask:
    def test_replaces_by_name(self, two_core_system):
        replacement = SecurityTask(
            name="sec_hi", wcet=2.0, period_des=100.0, period_max=500.0
        )
        transformed = with_security_task(two_core_system, replacement)
        assert transformed.security_tasks["sec_hi"].wcet == 2.0
        assert len(transformed.security_tasks) == 2

    def test_appends_new(self, two_core_system):
        extra = SecurityTask(
            name="extra", wcet=1.0, period_des=100.0, period_max=500.0
        )
        transformed = with_security_task(two_core_system, extra)
        assert len(transformed.security_tasks) == 3


class TestWithPeriodMax:
    def test_updates_single_bound(self, two_core_system):
        transformed = with_period_max(two_core_system, "sec_hi", 700.0)
        assert transformed.security_tasks["sec_hi"].period_max == 700.0
        assert transformed.security_tasks["sec_lo"].period_max == 900.0

    def test_unknown_task_raises(self, two_core_system):
        with pytest.raises(KeyError):
            with_period_max(two_core_system, "ghost", 700.0)

    def test_invalid_bound_rejected(self, two_core_system):
        with pytest.raises(ValidationError):
            with_period_max(two_core_system, "sec_hi", 50.0)  # < T_des


class TestWithExtraCores:
    def test_adds_empty_cores(self, two_core_system):
        bigger = with_extra_cores(two_core_system, 2)
        assert bigger.platform.num_cores == 4
        assert bigger.rt_partition.tasks_on(2) == ()
        assert bigger.rt_partition.tasks_on(3) == ()

    def test_partition_preserved(self, two_core_system):
        bigger = with_extra_cores(two_core_system)
        for task in two_core_system.rt_tasks:
            assert bigger.rt_partition.core_of(task) == (
                two_core_system.rt_partition.core_of(task)
            )

    def test_rejects_zero(self, two_core_system):
        with pytest.raises(ValidationError):
            with_extra_cores(two_core_system, 0)

    def test_extra_core_can_rescue_allocation(self):
        from repro.core.hydra import HydraAllocator
        from repro.model import (
            Partition,
            Platform,
            RealTimeTask,
            SystemModel,
        )

        platform = Platform(1)
        rt = TaskSet([RealTimeTask(name="r", wcet=9.0, period=10.0)])
        system = SystemModel(
            platform=platform,
            rt_partition=Partition(platform, rt, {"r": 0}),
            security_tasks=TaskSet(
                [
                    SecurityTask(
                        name="s", wcet=5.0, period_des=50.0,
                        period_max=80.0,
                    )
                ]
            ),
        )
        assert not HydraAllocator().allocate(system).schedulable
        assert HydraAllocator().allocate(
            with_extra_cores(system)
        ).schedulable
