"""Unit tests for Partition and SystemModel."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.system import Partition, SystemModel
from repro.model.task import RealTimeTask, SecurityTask, TaskSet


@pytest.fixture
def platform() -> Platform:
    return Platform(2)


@pytest.fixture
def rt_tasks() -> TaskSet:
    return TaskSet(
        [
            RealTimeTask(name="a", wcet=1.0, period=10.0),
            RealTimeTask(name="b", wcet=2.0, period=20.0),
            RealTimeTask(name="c", wcet=30.0, period=100.0),
        ]
    )


@pytest.fixture
def partition(platform, rt_tasks) -> Partition:
    return Partition(platform, rt_tasks, {"a": 0, "b": 0, "c": 1})


class TestPartition:
    def test_core_of(self, partition):
        assert partition.core_of("a") == 0
        assert partition.core_of("c") == 1

    def test_core_of_task_object(self, partition, rt_tasks):
        assert partition.core_of(rt_tasks["b"]) == 0

    def test_core_of_unknown_raises(self, partition):
        with pytest.raises(ValidationError):
            partition.core_of("zzz")

    def test_tasks_on(self, partition):
        assert [t.name for t in partition.tasks_on(0)] == ["a", "b"]
        assert [t.name for t in partition.tasks_on(1)] == ["c"]

    def test_tasks_on_validates_core(self, partition):
        with pytest.raises(ValidationError):
            partition.tasks_on(2)

    def test_utilization_of(self, partition):
        assert partition.utilization_of(0) == pytest.approx(0.1 + 0.1)
        assert partition.utilization_of(1) == pytest.approx(0.3)

    def test_utilizations_list(self, partition):
        assert partition.utilizations() == pytest.approx([0.2, 0.3])

    def test_missing_assignment_raises(self, platform, rt_tasks):
        with pytest.raises(ValidationError):
            Partition(platform, rt_tasks, {"a": 0, "b": 0})

    def test_unknown_assignment_raises(self, platform, rt_tasks):
        with pytest.raises(ValidationError):
            Partition(
                platform, rt_tasks, {"a": 0, "b": 0, "c": 1, "ghost": 1}
            )

    def test_invalid_core_raises(self, platform, rt_tasks):
        with pytest.raises(ValidationError):
            Partition(platform, rt_tasks, {"a": 0, "b": 0, "c": 2})

    def test_as_mapping_is_a_copy(self, partition):
        mapping = partition.as_mapping()
        mapping["a"] = 1
        assert partition.core_of("a") == 0

    def test_indicator_matrix(self, partition):
        indicator = partition.indicator()
        # I[m][r] over set order (a, b, c).
        assert indicator == [[1, 1, 0], [0, 0, 1]]

    def test_equality(self, platform, rt_tasks, partition):
        clone = Partition(platform, rt_tasks, {"a": 0, "b": 0, "c": 1})
        assert clone == partition

    def test_accepts_plain_iterable_of_tasks(self, platform):
        tasks = [RealTimeTask(name="x", wcet=1.0, period=10.0)]
        partition = Partition(platform, tasks, {"x": 1})
        assert partition.core_of("x") == 1


class TestSystemModel:
    def test_valid_construction(self, two_core_system):
        assert two_core_system.platform.num_cores == 2
        assert len(two_core_system.security_tasks) == 2

    def test_platform_mismatch_raises(self, partition):
        with pytest.raises(ValidationError):
            SystemModel(
                platform=Platform(3),
                rt_partition=partition,
                security_tasks=TaskSet(),
            )

    def test_rejects_rt_task_in_security_set(self, platform, partition):
        with pytest.raises(ValidationError):
            SystemModel(
                platform=platform,
                rt_partition=partition,
                security_tasks=TaskSet(
                    [RealTimeTask(name="x", wcet=1.0, period=10.0)]
                ),
            )

    def test_rejects_name_clash(self, platform, partition):
        with pytest.raises(ValidationError):
            SystemModel(
                platform=platform,
                rt_partition=partition,
                security_tasks=TaskSet(
                    [
                        SecurityTask(
                            name="a",  # clashes with RT task "a"
                            wcet=1.0,
                            period_des=100.0,
                            period_max=1000.0,
                        )
                    ]
                ),
            )

    def test_rejects_weight_for_unknown_task(self, platform, partition):
        with pytest.raises(ValidationError):
            SystemModel(
                platform=platform,
                rt_partition=partition,
                security_tasks=TaskSet(),
                weights={"ghost": 2.0},
            )

    def test_weight_of_defaults_to_task_weight(self, two_core_system):
        task = two_core_system.security_tasks["sec_hi"]
        assert two_core_system.weight_of(task) == 1.0
        assert two_core_system.weight_of("sec_hi") == 1.0

    def test_weight_of_uses_override(self, rt_pair, security_pair):
        platform = Platform(2)
        partition = Partition(
            platform, rt_pair, {"rt_fast": 0, "rt_slow": 1}
        )
        system = SystemModel(
            platform=platform,
            rt_partition=partition,
            security_tasks=security_pair,
            weights={"sec_hi": 7.0},
        )
        assert system.weight_of("sec_hi") == 7.0
        assert system.weight_of("sec_lo") == 1.0

    def test_total_utilizations(self, two_core_system):
        assert two_core_system.total_rt_utilization == pytest.approx(0.2)
        expected_sec = 5.0 / 100.0 + 8.0 / 150.0
        assert two_core_system.total_security_utilization_des == (
            pytest.approx(expected_sec)
        )

    def test_rt_tasks_property(self, two_core_system):
        assert set(two_core_system.rt_tasks.names) == {"rt_fast", "rt_slow"}
