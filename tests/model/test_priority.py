"""Unit tests for the priority-assignment policies."""

from __future__ import annotations

import pytest

from repro.model.priority import (
    assign_rate_monotonic,
    higher_priority_security,
    rate_monotonic_order,
    security_priority_order,
    weights_by_priority,
)
from repro.model.task import RealTimeTask, SecurityTask


def rt(name: str, wcet: float, period: float) -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period)


def sec(name: str, tmax: float, tdes: float | None = None) -> SecurityTask:
    tdes = tdes if tdes is not None else tmax / 10.0
    return SecurityTask(
        name=name, wcet=1.0, period_des=tdes, period_max=tmax
    )


class TestRateMonotonicOrder:
    def test_shorter_period_first(self):
        tasks = [rt("slow", 1, 100), rt("fast", 1, 10)]
        assert [t.name for t in rate_monotonic_order(tasks)] == [
            "fast",
            "slow",
        ]

    def test_tie_broken_by_wcet_then_name(self):
        tasks = [rt("a", 1, 10), rt("b", 2, 10), rt("c", 2, 10)]
        ordered = [t.name for t in rate_monotonic_order(tasks)]
        assert ordered == ["b", "c", "a"]

    def test_deterministic_regardless_of_input_order(self):
        tasks = [rt("a", 1, 30), rt("b", 1, 20), rt("c", 1, 10)]
        assert rate_monotonic_order(tasks) == rate_monotonic_order(
            reversed(tasks)
        )


class TestAssignRateMonotonic:
    def test_priorities_are_distinct_and_dense(self):
        tasks = [rt("a", 1, 30), rt("b", 1, 20), rt("c", 1, 10)]
        assigned = assign_rate_monotonic(tasks)
        assert [t.priority for t in assigned] == [0, 1, 2]

    def test_highest_priority_has_shortest_period(self):
        tasks = [rt("a", 1, 30), rt("b", 1, 10)]
        assigned = assign_rate_monotonic(tasks)
        assert assigned[0].name == "b"
        assert assigned[0].priority == 0


class TestSecurityPriorityOrder:
    def test_smaller_tmax_means_higher_priority(self):
        tasks = [sec("late", 1000.0), sec("early", 100.0)]
        assert [t.name for t in security_priority_order(tasks)] == [
            "early",
            "late",
        ]

    def test_tie_on_tmax_broken_by_tdes(self):
        a = SecurityTask(name="a", wcet=1, period_des=50, period_max=100)
        b = SecurityTask(name="b", wcet=1, period_des=20, period_max=100)
        assert [t.name for t in security_priority_order([a, b])] == [
            "b",
            "a",
        ]

    def test_total_deterministic_order(self):
        a = SecurityTask(name="a", wcet=1, period_des=50, period_max=100)
        b = SecurityTask(name="b", wcet=1, period_des=50, period_max=100)
        assert [t.name for t in security_priority_order([b, a])] == [
            "a",
            "b",
        ]


class TestHigherPrioritySecurity:
    def test_empty_for_highest(self):
        tasks = [sec("hi", 100.0), sec("lo", 1000.0)]
        assert higher_priority_security(tasks[0], tasks) == []

    def test_all_above_for_lowest(self):
        tasks = [sec("hi", 100.0), sec("mid", 500.0), sec("lo", 1000.0)]
        hp = higher_priority_security(tasks[2], tasks)
        assert [t.name for t in hp] == ["hi", "mid"]

    def test_excludes_self(self):
        tasks = [sec("hi", 100.0), sec("lo", 1000.0)]
        hp = higher_priority_security(tasks[1], tasks)
        assert all(t.name != "lo" for t in hp)


class TestWeightsByPriority:
    def test_linear_default_weights(self):
        tasks = [sec("hi", 100.0), sec("mid", 500.0), sec("lo", 1000.0)]
        weights = weights_by_priority(tasks)
        assert weights == {"hi": 3.0, "mid": 2.0, "lo": 1.0}

    def test_scaled_top_weight(self):
        tasks = [sec("hi", 100.0), sec("lo", 1000.0)]
        weights = weights_by_priority(tasks, highest=10.0)
        assert weights["hi"] == pytest.approx(10.0)
        assert weights["lo"] == pytest.approx(5.0)

    def test_empty_input(self):
        assert weights_by_priority([]) == {}

    def test_weights_strictly_positive_and_decreasing(self):
        tasks = [sec(f"s{i}", 100.0 * (i + 1)) for i in range(5)]
        weights = weights_by_priority(tasks)
        ordered = [weights[f"s{i}"] for i in range(5)]
        assert all(w > 0 for w in ordered)
        assert ordered == sorted(ordered, reverse=True)
