"""Unit tests for the platform model."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.platform import Platform


class TestPlatform:
    def test_cores_range(self):
        assert list(Platform(4).cores()) == [0, 1, 2, 3]

    def test_iteration_and_len(self):
        platform = Platform(3)
        assert list(platform) == [0, 1, 2]
        assert len(platform) == 3

    def test_contains(self):
        platform = Platform(2)
        assert 0 in platform
        assert 1 in platform
        assert 2 not in platform
        assert -1 not in platform
        assert "0" not in platform

    def test_rejects_zero_cores(self):
        with pytest.raises(ValidationError):
            Platform(0)

    def test_rejects_negative_cores(self):
        with pytest.raises(ValidationError):
            Platform(-1)

    def test_rejects_non_integer(self):
        with pytest.raises(ValidationError):
            Platform(2.5)  # type: ignore[arg-type]

    def test_core_label_is_one_based(self):
        assert Platform(4).core_label(0) == "π1"
        assert Platform(4).core_label(3) == "π4"

    def test_core_label_validates(self):
        with pytest.raises(ValidationError):
            Platform(2).core_label(2)

    def test_validate_core_rejects_out_of_range(self):
        platform = Platform(2)
        platform.validate_core(1)  # no raise
        with pytest.raises(ValidationError):
            platform.validate_core(2)

    def test_without_core_shrinks(self):
        assert Platform(4).without_core(3).num_cores == 3

    def test_without_core_rejects_single_core(self):
        with pytest.raises(ValidationError):
            Platform(1).without_core(0)

    def test_equality(self):
        assert Platform(2) == Platform(2)
        assert Platform(2) != Platform(3)
