"""Unit tests for the task models."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.model.task import (
    RealTimeTask,
    SecurityTask,
    TaskSet,
    total_utilization,
)


class TestRealTimeTask:
    def test_basic_construction(self):
        task = RealTimeTask(name="t", wcet=2.0, period=10.0)
        assert task.wcet == 2.0
        assert task.period == 10.0

    def test_implicit_deadline_defaults_to_period(self):
        task = RealTimeTask(name="t", wcet=2.0, period=10.0)
        assert task.deadline == 10.0
        assert task.is_implicit_deadline

    def test_explicit_constrained_deadline(self):
        task = RealTimeTask(name="t", wcet=2.0, period=10.0, deadline=5.0)
        assert task.deadline == 5.0
        assert not task.is_implicit_deadline

    def test_utilization(self):
        task = RealTimeTask(name="t", wcet=2.5, period=10.0)
        assert task.utilization == pytest.approx(0.25)

    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=0.0, period=10.0)
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=-1.0, period=10.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=1.0, period=0.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=math.nan, period=10.0)
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=1.0, period=math.inf)

    def test_rejects_wcet_exceeding_deadline(self):
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=6.0, period=10.0, deadline=5.0)

    def test_rejects_deadline_beyond_period(self):
        with pytest.raises(ValidationError):
            RealTimeTask(name="t", wcet=1.0, period=10.0, deadline=12.0)

    def test_with_priority_returns_new_task(self):
        task = RealTimeTask(name="t", wcet=1.0, period=10.0)
        assigned = task.with_priority(3)
        assert assigned.priority == 3
        assert task.priority is None
        assert assigned.name == task.name

    def test_priority_excluded_from_equality(self):
        a = RealTimeTask(name="t", wcet=1.0, period=10.0)
        assert a == a.with_priority(5)

    def test_full_utilization_task_allowed(self):
        task = RealTimeTask(name="t", wcet=10.0, period=10.0)
        assert task.utilization == 1.0


class TestSecurityTask:
    def test_basic_construction(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=1000.0
        )
        assert task.period_des == 100.0
        assert task.period_max == 1000.0

    def test_desired_and_minimum_utilization(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=1000.0
        )
        assert task.utilization_des == pytest.approx(0.05)
        assert task.utilization_min == pytest.approx(0.005)

    def test_min_tightness(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0
        )
        assert task.min_tightness == pytest.approx(0.25)

    def test_tightness_at_desired_period_is_one(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0
        )
        assert task.tightness(100.0) == pytest.approx(1.0)

    def test_tightness_monotone_in_period(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0
        )
        assert task.tightness(200.0) > task.tightness(400.0)

    def test_tightness_rejects_out_of_range_period(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0
        )
        with pytest.raises(ValidationError):
            task.tightness(99.0)
        with pytest.raises(ValidationError):
            task.tightness(401.0)

    def test_rejects_des_above_max(self):
        with pytest.raises(ValidationError):
            SecurityTask(
                name="s", wcet=5.0, period_des=500.0, period_max=400.0
            )

    def test_rejects_wcet_above_desired_period(self):
        with pytest.raises(ValidationError):
            SecurityTask(
                name="s", wcet=101.0, period_des=100.0, period_max=400.0
            )

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValidationError):
            SecurityTask(
                name="s",
                wcet=5.0,
                period_des=100.0,
                period_max=400.0,
                weight=0.0,
            )

    def test_equal_des_and_max_period(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=100.0
        )
        assert task.min_tightness == 1.0

    def test_surface_not_part_of_equality(self):
        a = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0,
            surface="fs",
        )
        b = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=400.0,
            surface="net",
        )
        assert a == b


class TestTaskSet:
    def test_len_and_iteration(self, rt_pair):
        assert len(rt_pair) == 2
        assert [t.name for t in rt_pair] == ["rt_fast", "rt_slow"]

    def test_index_by_position_and_name(self, rt_pair):
        assert rt_pair[0].name == "rt_fast"
        assert rt_pair["rt_slow"].wcet == 10.0

    def test_contains_name_and_object(self, rt_pair):
        assert "rt_fast" in rt_pair
        assert rt_pair[0] in rt_pair
        assert "nope" not in rt_pair

    def test_rejects_duplicate_names(self):
        task = RealTimeTask(name="t", wcet=1.0, period=10.0)
        with pytest.raises(ValidationError):
            TaskSet([task, task])

    def test_names(self, rt_pair):
        assert rt_pair.names == ("rt_fast", "rt_slow")

    def test_utilization_mixes_task_kinds(self):
        tasks = TaskSet(
            [
                RealTimeTask(name="r", wcet=1.0, period=10.0),
                SecurityTask(
                    name="s", wcet=10.0, period_des=100.0, period_max=500.0
                ),
            ]
        )
        assert tasks.utilization == pytest.approx(0.1 + 0.1)

    def test_extended_preserves_original(self, rt_pair):
        extra = RealTimeTask(name="new", wcet=1.0, period=5.0)
        bigger = rt_pair.extended([extra])
        assert len(bigger) == 3
        assert len(rt_pair) == 2

    def test_extended_rejects_name_clash(self, rt_pair):
        clash = RealTimeTask(name="rt_fast", wcet=1.0, period=5.0)
        with pytest.raises(ValidationError):
            rt_pair.extended([clash])

    def test_sorted_by(self, rt_pair):
        by_period_desc = rt_pair.sorted_by(lambda t: t.period, reverse=True)
        assert by_period_desc.names == ("rt_slow", "rt_fast")

    def test_equality_and_hash(self, rt_pair):
        clone = TaskSet(list(rt_pair))
        assert clone == rt_pair
        assert hash(clone) == hash(rt_pair)

    def test_empty_set(self):
        empty = TaskSet()
        assert len(empty) == 0
        assert empty.utilization == 0.0


class TestTotalUtilization:
    def test_empty(self):
        assert total_utilization([]) == 0.0

    def test_security_counted_at_desired_rate(self):
        sec = SecurityTask(
            name="s", wcet=10.0, period_des=100.0, period_max=1000.0
        )
        assert total_utilization([sec]) == pytest.approx(0.1)
