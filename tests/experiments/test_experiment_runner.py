"""Unit tests for the shared experiment runner."""

from __future__ import annotations

from repro.experiments.runner import (
    build_hydra_system,
    run_acceptance_trial,
    spawn_streams,
)
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, generate_workload


class TestSpawnStreams:
    def test_count_and_independence(self):
        streams = spawn_streams(7, 4)
        assert len(streams) == 4
        draws = [s.random() for s in streams]
        assert len(set(draws)) == 4  # streams differ

    def test_reproducible(self):
        a = [s.random() for s in spawn_streams(7, 3)]
        b = [s.random() for s in spawn_streams(7, 3)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [s.random() for s in spawn_streams(7, 3)]
        b = [s.random() for s in spawn_streams(8, 3)]
        assert a != b


class TestBuildHydraSystem:
    def test_moderate_load_builds(self, rng):
        workload = generate_workload(2, 1.0, rng)
        system = build_hydra_system(workload)
        assert system is not None
        assert system.platform == workload.platform
        assert system.security_tasks == workload.security_tasks

    def test_impossible_load_returns_none(self, rng):
        # A single RT task per core at u ≈ 1 plus more: force failure by
        # generating at the capacity edge repeatedly until partition
        # fails — or simply craft one directly.
        from repro.model.task import RealTimeTask, TaskSet
        from repro.taskgen.synthetic import SyntheticWorkload

        rt = TaskSet(
            [
                RealTimeTask(name=f"r{i}", wcet=7.0, period=10.0)
                for i in range(3)
            ]
        )
        workload = SyntheticWorkload(
            platform=Platform(2),
            rt_tasks=rt,
            security_tasks=TaskSet(),
            target_utilization=2.1,
        )
        assert build_hydra_system(workload) is None


class TestRunAcceptanceTrial:
    def test_outcome_fields(self, rng):
        outcome = run_acceptance_trial(2, 1.0, rng)
        assert outcome.utilization == 1.0
        assert isinstance(outcome.hydra_schedulable, bool)
        assert isinstance(outcome.single_schedulable, bool)

    def test_low_utilization_both_accept(self, rng):
        for _ in range(5):
            outcome = run_acceptance_trial(2, 0.3, rng)
            assert outcome.hydra_schedulable
            assert outcome.single_schedulable

    def test_single_core_platform_skips_singlecore(self, rng):
        outcome = run_acceptance_trial(1, 0.3, rng)
        assert outcome.single is None
        assert not outcome.single_schedulable

    def test_custom_config_respected(self, rng):
        config = SyntheticConfig(security_task_count=(2, 2))
        outcome = run_acceptance_trial(2, 0.5, rng, config=config)
        if outcome.hydra is not None and outcome.hydra.schedulable:
            assert len(outcome.hydra.assignments) == 2

    def test_custom_allocators_used(self, rng):
        from repro.core.variants import FirstFeasibleAllocator

        outcome = run_acceptance_trial(
            2, 0.5, rng, hydra_allocator=FirstFeasibleAllocator()
        )
        assert outcome.hydra is not None
        assert outcome.hydra.scheme == "first-feasible"
