"""Unit tests for the unified experiment API: protocol, registry,
structured results, and their serialisation round trips."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.experiments import (
    ExperimentResult,
    Fig2Experiment,
    SweepEngine,
    Table1Experiment,
    experiment_names,
    get_experiment,
    iter_experiments,
    run_fig2,
)
from repro.experiments.api import RESULT_FORMAT, Experiment, RawRun
from repro.experiments.config import SCALES
from repro.experiments.registry import (
    UnknownExperimentError,
    register_experiment,
    unregister_experiment,
)

SMOKE = SCALES["smoke"]

PAPER_SET = ("table1", "fig1", "fig2", "fig3", "quality")
ABLATION_SET = (
    "ablation-solver", "ablation-core-choice", "ablation-search",
    "ablation-extension", "ablation-partitioning",
)


class TestRegistry:
    def test_all_builtin_experiments_registered(self):
        names = experiment_names()
        for name in PAPER_SET + ABLATION_SET:
            assert name in names

    def test_report_order_paper_first(self):
        names = experiment_names()
        assert names[:5] == list(PAPER_SET)
        assert names[5:10] == list(ABLATION_SET)

    def test_get_experiment_returns_fresh_instances(self):
        a = get_experiment("fig2")
        b = get_experiment("fig2")
        assert a is not b
        assert isinstance(a, Fig2Experiment)

    def test_unknown_experiment_error_mentions_list(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_experiment("fig9")
        message = str(excinfo.value)
        assert "fig9" in message
        assert "repro-hydra list" in message
        assert "fig2" in message  # the known names are enumerated

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError):
            register_experiment("fig2")(Fig2Experiment)

    def test_plugin_registration_and_removal(self):
        @register_experiment("test-plugin")
        class PluginExperiment(Table1Experiment):
            name = "test-plugin"
            title = "a plugin"

        try:
            assert "test-plugin" in experiment_names()
            assert isinstance(get_experiment("test-plugin"), PluginExperiment)
        finally:
            unregister_experiment("test-plugin")
        assert "test-plugin" not in experiment_names()

    def test_specs_are_well_formed(self):
        for experiment in iter_experiments():
            spec = experiment.spec()
            assert spec.name
            assert spec.title
            assert spec.version >= 1


class TestProtocol:
    def test_points_cover_all_sweeps(self):
        experiment = Fig2Experiment()
        points = experiment.points(SMOKE)
        total = sum(len(s.points) for s in experiment.sweeps(SMOKE))
        assert len(points) == total > 0

    def test_run_point_matches_engine_payload(self):
        experiment = Fig2Experiment()
        point = experiment.points(SMOKE)[0]
        payload = experiment.run_point(point)
        engine_result = SweepEngine().run(point.sweep)
        assert payload == engine_result.payloads[point.index]

    def test_run_point_accepts_explicit_stream(self):
        experiment = Fig2Experiment()
        point = experiment.points(SMOKE)[0]
        assert (
            experiment.run_point(point, stream=point.stream())
            == experiment.run_point(point)
        )

    def test_spec_hash_stable_and_scale_sensitive(self):
        experiment = Fig2Experiment()
        assert experiment.spec_hash(SMOKE) == experiment.spec_hash(SMOKE)
        assert experiment.spec_hash(SMOKE) != experiment.spec_hash(
            SCALES["default"]
        )
        assert experiment.spec_hash(SMOKE) != Table1Experiment().spec_hash(
            SMOKE
        )

    def test_shim_equals_protocol_run(self):
        via_protocol = Fig2Experiment().run_domain(SMOKE)
        via_shim = run_fig2(SMOKE)
        assert via_protocol == via_shim

    def test_render_rejects_foreign_result(self):
        result = Table1Experiment().run(SMOKE)
        with pytest.raises(ValidationError):
            Fig2Experiment().render(result)


class TestExperimentResult:
    @pytest.fixture(scope="class")
    def result(self):
        return Table1Experiment().run(SMOKE)

    def test_metadata(self, result):
        assert result.experiment == "table1"
        assert result.scale == "smoke"
        assert result.format == RESULT_FORMAT
        assert len(result.spec_hash) == 64

    def test_json_round_trip(self, result):
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_round_tripped_result_renders_identically(self, result):
        experiment = Table1Experiment()
        loaded = ExperimentResult.from_json(result.to_json())
        assert experiment.render(loaded) == experiment.render(result)

    def test_csv_matches_columns_and_rows(self, result):
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == ",".join(result.columns)
        assert len(lines) == 1 + len(result.rows)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValidationError):
            ExperimentResult.from_json("not json at all")
        with pytest.raises(ValidationError):
            ExperimentResult.from_json("[1, 2, 3]")

    def test_from_json_rejects_wrong_format_version(self, result):
        doc = result.to_dict()
        doc["format"] = RESULT_FORMAT + 1
        import json

        with pytest.raises(ValidationError):
            ExperimentResult.from_json(json.dumps(doc))

    def test_table1_result_renders_with_its_own_core_count(self):
        # A 4-core result loaded from JSON must say "4 cores" even when
        # rendered through a default-constructed (2-core) experiment.
        result = Table1Experiment(cores=4).run(SMOKE)
        loaded = ExperimentResult.from_json(result.to_json())
        assert "4 cores" in get_experiment("table1").render(loaded)

    @pytest.mark.parametrize("name", PAPER_SET)
    def test_every_paper_experiment_round_trips(self, name):
        # table1 is scale-independent but cheap either way; the rest
        # run at smoke scale.  fig3/quality are the slowest — shrink.
        scale = SMOKE.with_overrides(
            tasksets_per_point=2, fig3_tasksets_per_point=1, sim_trials=4
        )
        experiment = get_experiment(name)
        result = experiment.run(scale)
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded == result
        assert experiment.render(loaded) == experiment.render(result)


class TestEmptySweepExperiments:
    def test_search_ablation_runs_without_sweeps(self):
        experiment = get_experiment("ablation-search")
        assert experiment.sweeps(SMOKE) == []
        result = experiment.run(SMOKE)
        assert result.rows  # one summary row
        assert "branch-and-bound" in experiment.render(result)


class TestRawRun:
    def test_payloads_flatten_in_order(self):
        experiment = Fig2Experiment()
        engine = SweepEngine()
        sweeps = tuple(engine.run(s) for s in experiment.sweeps(SMOKE))
        raw = RawRun(sweeps=sweeps, scale=SMOKE)
        assert raw.payloads == [
            p for s in sweeps for p in s.payloads
        ]


def test_experiment_is_abstract():
    with pytest.raises(TypeError):
        Experiment()  # the protocol's hooks are abstract
