"""Unit tests for the monitoring-quality sweep."""

from __future__ import annotations

import pytest

from repro.experiments.config import SCALES
from repro.experiments.quality import format_quality, run_quality


@pytest.fixture(scope="module")
def result():
    scale = SCALES["smoke"].with_overrides(
        utilization_start=0.3, utilization_stop=0.8, utilization_step=0.25
    )
    return run_quality(scale, cores=4)


class TestRunQuality:
    def test_point_structure(self, result):
        assert len(result.points) == 3
        for point in result.points:
            assert point.cores == 4
            assert 0 <= point.both_accepted <= point.tasksets

    def test_tightness_within_unit_range(self, result):
        for point in result.points:
            if point.both_accepted:
                assert 0.0 < point.mean_tightness_hydra <= 1.0 + 1e-9
                assert 0.0 < point.mean_tightness_single <= 1.0 + 1e-9

    def test_hydra_never_worse(self, result):
        for point in result.points:
            if point.both_accepted:
                assert point.advantage >= -1e-9

    def test_low_utilization_parity(self, result):
        first = result.points[0]
        assert first.both_accepted == first.tasksets
        assert first.advantage == pytest.approx(0.0, abs=1e-6)

    def test_formatting(self, result):
        text = format_quality(result)
        assert "Monitoring quality" in text
        assert "advantage" in text

    def test_empty_points_render_dashes(self):
        scale = SCALES["smoke"].with_overrides(
            utilization_start=0.98,
            utilization_stop=0.98,
            utilization_step=0.5,
            tasksets_per_point=2,
        )
        tight = run_quality(scale, cores=2)
        text = format_quality(tight)
        assert text  # renders without error even with empty cells
