"""Multi-writer segments: isolation, merged reads, gc compaction."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import CacheError, ValidationError
from repro.experiments.store import ResultStore

KIND = "demo"


def _key(i: int) -> dict:
    return {"format": 1, "kind": KIND, "index": i}


def _fill(store: ResultStore, start: int, n: int) -> None:
    store.put_many(
        KIND, [(_key(i), {"value": i}) for i in range(start, start + n)]
    )


class TestWriterIds:
    def test_valid_ids_accepted(self, tmp_path):
        for writer in ("serve123", "ci-run_7", "A"):
            ResultStore(tmp_path, writer_id=writer)

    def test_invalid_ids_rejected(self, tmp_path):
        for writer in ("", "a.b", "a/b", "a b", "a\n"):
            with pytest.raises(ValidationError, match="writer_id"):
                ResultStore(tmp_path, writer_id=writer)

    def test_readonly_excludes_writer_id(self, tmp_path):
        ResultStore(tmp_path)  # materialise the root first
        with pytest.raises(ValidationError, match="readonly"):
            ResultStore(tmp_path, readonly=True, writer_id="w")


class TestSegmentIsolation:
    def test_writer_appends_land_in_a_private_segment(self, tmp_path):
        store = ResultStore(tmp_path, writer_id="w1")
        _fill(store, 0, 3)
        shard_dir = tmp_path / KIND
        assert (shard_dir / "data.w1.jsonl").exists()
        assert (shard_dir / "index.w1.jsonl").exists()
        assert not (shard_dir / "data.jsonl").exists()

    def test_default_store_keeps_writing_the_primary_log(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)
        shard_dir = tmp_path / KIND
        assert (shard_dir / "data.jsonl").exists()
        assert not list(shard_dir.glob("data.*.jsonl"))

    def test_two_writers_never_share_a_file(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 2)
        _fill(ResultStore(tmp_path, writer_id="b"), 2, 2)
        shard_dir = tmp_path / KIND
        assert (shard_dir / "data.a.jsonl").exists()
        assert (shard_dir / "data.b.jsonl").exists()


class TestMergedReads:
    def test_reads_merge_primary_and_all_segments(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)  # primary: 0, 1
        _fill(ResultStore(tmp_path, writer_id="a"), 2, 2)  # a: 2, 3
        _fill(ResultStore(tmp_path, writer_id="b"), 4, 2)  # b: 4, 5

        reader = ResultStore(tmp_path)
        assert len(reader) == 6
        got = reader.get_many(KIND, [_key(i) for i in range(6)])
        assert got == [{"value": i} for i in range(6)]

    def test_writer_handles_see_other_writers_entries(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 2)
        other = ResultStore(tmp_path, writer_id="b")
        assert other.get(KIND, _key(1)) == {"value": 1}

    def test_duplicate_digests_across_writers_count_once(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 3)
        _fill(ResultStore(tmp_path, writer_id="b"), 0, 3)  # same keys
        reader = ResultStore(tmp_path)
        assert len(reader) == 3
        assert reader.get(KIND, _key(0)) == {"value": 0}

    def test_readonly_handle_reads_segments(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 2)
        reader = ResultStore(tmp_path, readonly=True)
        assert reader.get(KIND, _key(0)) == {"value": 0}
        with pytest.raises(CacheError, match="read-only"):
            reader.put(KIND, _key(9), {"value": 9})

    def test_lost_segment_index_is_rebuilt(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 3)
        (tmp_path / KIND / "index.a.jsonl").unlink()
        reader = ResultStore(tmp_path)
        assert reader.get_many(KIND, [_key(i) for i in range(3)]) == [
            {"value": i} for i in range(3)
        ]

    def test_torn_segment_tail_only_loses_the_torn_record(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 2)
        data = tmp_path / KIND / "data.a.jsonl"
        with data.open("ab") as handle:
            handle.write(b'{"key": {"to')  # killed mid-append
        (tmp_path / KIND / "index.a.jsonl").unlink()  # force a rescan
        reader = ResultStore(tmp_path)
        assert reader.get_many(KIND, [_key(i) for i in range(2)]) == [
            {"value": i} for i in range(2)
        ]


class TestGcMerge:
    def test_gc_folds_segments_into_the_primary_log(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)
        _fill(ResultStore(tmp_path, writer_id="a"), 2, 2)
        _fill(ResultStore(tmp_path, writer_id="b"), 4, 2)

        store = ResultStore(tmp_path)
        summary = store.gc()
        assert summary["merged_segments"] == 2
        assert summary["merged_entries"] == 4
        assert summary["entries"] == 6

        shard_dir = tmp_path / KIND
        assert not list(shard_dir.glob("data.*.jsonl"))
        assert not list(shard_dir.glob("index.*.jsonl"))
        fresh = ResultStore(tmp_path)
        assert len(fresh) == 6
        assert fresh.get_many(KIND, [_key(i) for i in range(6)]) == [
            {"value": i} for i in range(6)
        ]

    def test_gc_dedupes_records_present_in_several_segments(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)  # primary already holds 0, 1
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 4)  # overlaps
        store = ResultStore(tmp_path)
        summary = store.gc()
        assert summary["merged_entries"] == 2  # only 2 and 3 moved
        assert summary["entries"] == 4
        assert len(ResultStore(tmp_path)) == 4

    def test_gc_is_idempotent(self, tmp_path):
        _fill(ResultStore(tmp_path, writer_id="a"), 0, 2)
        store = ResultStore(tmp_path)
        store.gc()
        second = store.gc()
        assert second["merged_segments"] == 0
        assert second["merged_entries"] == 0
        assert second["entries"] == 2

    def test_clear_drops_segments_too(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)
        _fill(ResultStore(tmp_path, writer_id="a"), 2, 2)
        store = ResultStore(tmp_path)
        assert store.clear() == 4
        assert len(ResultStore(tmp_path)) == 0
        assert not list((tmp_path / KIND).glob("*.jsonl"))


class TestStats:
    def test_stats_report_per_writer_segments(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)
        _fill(ResultStore(tmp_path, writer_id="a"), 2, 3)
        stats = ResultStore(tmp_path).stats()
        assert stats["entries"] == 5
        assert stats["segment_files"] == 1
        assert stats["segment_bytes"] > 0
        segments = stats["shards"][KIND]["segments"]
        assert segments["a"]["entries"] == 3
        assert segments["a"]["data_bytes"] > 0

    def test_stats_without_segments_report_zero(self, tmp_path):
        _fill(ResultStore(tmp_path), 0, 2)
        stats = ResultStore(tmp_path).stats()
        assert stats["segment_files"] == 0
        assert stats["segment_bytes"] == 0
        assert stats["shards"][KIND]["segments"] == {}


def _writer_process(root: str, writer: str, start: int, n: int) -> None:
    store = ResultStore(root, writer_id=writer)
    store.put_many(
        KIND, [(_key(i), {"value": i}) for i in range(start, start + n)]
    )


class TestConcurrentWriters:
    def test_two_processes_write_one_root_without_corruption(self, tmp_path):
        ResultStore(tmp_path)  # stamp the marker before forking
        n = 200
        procs = [
            multiprocessing.Process(
                target=_writer_process,
                args=(str(tmp_path), writer, start, n),
            )
            for writer, start in (("p1", 0), ("p2", n))
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        reader = ResultStore(tmp_path)
        assert len(reader) == 2 * n
        got = reader.get_many(KIND, [_key(i) for i in range(2 * n)])
        assert got == [{"value": i} for i in range(2 * n)]

        # And the merge keeps every record.
        summary = reader.gc()
        assert summary["merged_segments"] == 2
        assert summary["entries"] == 2 * n
        assert len(ResultStore(tmp_path)) == 2 * n
