"""Unit tests for the sweep engine, its determinism and its cache.

The engine's contract: for a fixed :class:`SweepSpec`, the aggregated
results are *byte-identical* regardless of worker count, and a
cache-warm second run returns the same bytes without recomputing a
single point.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.store import ResultStore
from repro.experiments.config import SCALES
from repro.experiments.fig2 import fig2_sweep_spec, run_fig2
from repro.experiments.parallel import (
    SweepEngine,
    SweepSpec,
    build_allocator,
    execute_point,
    outcome_from_dict,
    outcome_to_dict,
    register_point_runner,
    synthetic_config_from_dict,
    synthetic_config_to_dict,
)
from repro.experiments.runner import run_acceptance_trial, spawn_streams
from repro.taskgen.synthetic import SyntheticConfig


def _mini_spec(points: int = 3, trials: int = 4) -> SweepSpec:
    smoke = SCALES["smoke"]
    scale = smoke.with_overrides(tasksets_per_point=trials)
    spec = fig2_sweep_spec(2, scale)
    return SweepSpec(
        kind=spec.kind,
        seed=spec.seed,
        points=spec.points[:points],
        params=spec.params,
    )


def _bytes(result) -> bytes:
    return json.dumps(result.payloads, sort_keys=True).encode()


class TestDeterminism:
    def test_serial_and_parallel_runs_are_byte_identical(self):
        spec = _mini_spec()
        serial = SweepEngine(workers=1).run(spec)
        parallel = SweepEngine(workers=4).run(spec)
        assert _bytes(serial) == _bytes(parallel)
        assert serial.stats.computed_points == len(spec.points)
        assert parallel.stats.computed_points == len(spec.points)

    def test_engine_matches_legacy_serial_streams(self):
        """Point ``i``'s engine stream is ``spawn_streams``' stream ``i``
        — the exact randomness the pre-engine serial loops consumed."""
        spec = _mini_spec(points=2, trials=3)
        result = SweepEngine().run(spec)
        streams = spawn_streams(spec.seed, len(spec.points))
        for point, payload, rng in zip(
            spec.points, result.payloads, streams
        ):
            expected = [
                outcome_to_dict(
                    run_acceptance_trial(2, point["utilization"], rng)
                )
                for _ in range(3)
            ]
            assert payload["outcomes"] == expected

    def test_fig2_identical_across_worker_counts(self):
        smoke = SCALES["smoke"]
        serial = run_fig2(smoke, engine=SweepEngine(workers=1))
        parallel = run_fig2(smoke, engine=SweepEngine(workers=4))
        assert serial == parallel


class TestCache:
    def test_warm_run_recomputes_nothing(self, tmp_path):
        spec = _mini_spec()
        computed: list[int] = []
        engine = SweepEngine(
            cache=ResultCache(tmp_path), on_point_computed=computed.append
        )
        cold = engine.run(spec)
        assert sorted(computed) == list(range(len(spec.points)))
        assert cold.stats.computed_points == len(spec.points)

        computed.clear()
        warm = engine.run(spec)
        assert computed == []  # the call-counting hook never fired
        assert warm.stats.computed_points == 0
        assert warm.stats.cached_points == len(spec.points)
        assert _bytes(cold) == _bytes(warm)

    def test_parallel_run_reuses_serial_cache(self, tmp_path):
        spec = _mini_spec()
        cold = SweepEngine(workers=1, cache=ResultCache(tmp_path)).run(spec)
        warm_cache = ResultCache(tmp_path)
        warm = SweepEngine(workers=4, cache=warm_cache).run(spec)
        assert warm.stats.cached_points == len(spec.points)
        assert warm_cache.hits == len(spec.points)
        assert _bytes(cold) == _bytes(warm)

    def test_extended_sweep_only_computes_new_points(self, tmp_path):
        short = _mini_spec(points=2)
        extended = _mini_spec(points=3)
        assert extended.points[:2] == short.points

        engine = SweepEngine(cache=ResultCache(tmp_path))
        engine.run(short)
        result = engine.run(extended)
        assert result.stats.cached_points == 2
        assert result.stats.computed_points == 1

    def test_different_seeds_do_not_collide(self, tmp_path):
        spec = _mini_spec(points=2)
        other = SweepSpec(
            kind=spec.kind,
            seed=spec.seed + 1,
            points=spec.points,
            params=spec.params,
        )
        engine = SweepEngine(cache=ResultCache(tmp_path))
        engine.run(spec)
        result = engine.run(other)
        assert result.stats.computed_points == len(other.points)

    @pytest.mark.parametrize(
        "corruption",
        ["{ not json", "[]", "null", '{"key": null}', ""],
        ids=["invalid-json", "array", "null", "no-payload", "empty"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, corruption):
        """Scribbling over the shard's record log downgrades the entry
        to a miss (recomputed), never to a wrong payload."""
        spec = _mini_spec(points=1)
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        engine.run(spec)
        data = tmp_path / spec.kind / "data.jsonl"
        data.write_text(corruption)
        rerun = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
        assert rerun.stats.computed_points == 1

    def test_clear_and_len(self, tmp_path):
        spec = _mini_spec(points=2)
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run(spec)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_cache_key_is_canonical(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})
        assert cache_key({"a": 1}) != cache_key({"a": 2})


class TestSpec:
    def test_round_trips_through_json(self):
        spec = _mini_spec()
        rebuilt = SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec

    def test_rejects_empty_points(self):
        with pytest.raises(ValidationError):
            SweepSpec(kind="acceptance", seed=1, points=())

    def test_key_payload_excludes_point_count(self):
        short, extended = _mini_spec(points=2), _mini_spec(points=3)
        assert short.key_payload(0) == extended.key_payload(0)

    def test_unknown_kind_raises(self):
        spec = SweepSpec(kind="no-such-kind", seed=1, points=({"x": 1},))
        with pytest.raises(ValidationError):
            execute_point(spec, 0)

    def test_duplicate_runner_registration_raises(self):
        with pytest.raises(ValidationError):
            register_point_runner("acceptance")(lambda p, q, r: {})


class TestSerialisationHelpers:
    def test_outcome_round_trip(self, rng):
        outcome = run_acceptance_trial(2, 1.0, rng)
        rebuilt = outcome_from_dict(
            json.loads(json.dumps(outcome_to_dict(outcome)))
        )
        assert rebuilt.utilization == outcome.utilization
        assert rebuilt.hydra_schedulable == outcome.hydra_schedulable
        assert rebuilt.single_schedulable == outcome.single_schedulable
        if outcome.hydra_schedulable:
            assert rebuilt.hydra.periods() == outcome.hydra.periods()
            assert rebuilt.hydra.cores() == outcome.hydra.cores()

    def test_synthetic_config_round_trip(self):
        config = SyntheticConfig(
            security_task_count=(2, 6), period_granularity=5.0
        )
        rebuilt = synthetic_config_from_dict(
            json.loads(json.dumps(synthetic_config_to_dict(config)))
        )
        assert rebuilt == config

    def test_build_allocator_known_specs(self):
        for spec in (
            "hydra", "hydra[exact-rta]", "hydra+lp", "first-feasible",
            "slackiest-core",
        ):
            assert build_allocator(spec).name == spec

    def test_build_allocator_unknown_spec(self):
        from repro.allocators import UnknownAllocatorError

        with pytest.raises(UnknownAllocatorError, match="known allocators"):
            build_allocator("magic")


class TestEngineConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValidationError):
            SweepEngine(workers=-1)

    def test_workers_zero_and_none_mean_serial(self):
        assert SweepEngine(workers=0).workers == 1
        assert SweepEngine(workers=None).workers == 1

    def test_cache_path_coerced(self, tmp_path):
        engine = SweepEngine(cache=str(tmp_path / "c"))
        assert isinstance(engine.cache, ResultStore)

    def test_legacy_cache_instance_accepted(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert SweepEngine(cache=cache).cache is cache


class TestFig1Degenerate:
    def test_single_core_only_scale_returns_empty_result(self):
        """core_counts=(1,) has no SingleCore-comparable panel; the
        pre-engine loop returned an empty result rather than raising."""
        from repro.experiments.fig1 import run_fig1

        scale = SCALES["smoke"].with_overrides(core_counts=(1,))
        result = run_fig1(scale)
        assert result.points == ()
