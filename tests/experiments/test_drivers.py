"""Integration tests for the per-figure experiment drivers (smoke scale)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablations import (
    core_choice_ablation,
    extension_ablation,
    format_allocator_comparison,
    format_extension_ablation,
    format_search_ablation,
    search_ablation,
    solver_ablation,
)
from repro.experiments.config import SCALES
from repro.experiments.fig1 import build_uav_systems, format_fig1, run_fig1
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def smoke():
    return SCALES["smoke"]


class TestTable1:
    def test_rows_cover_table1(self):
        rows = run_table1()
        assert len(rows) == 6
        apps = [r.application for r in rows]
        assert apps.count("tripwire") == 5
        assert apps.count("bro") == 1

    def test_periods_within_bounds(self):
        for row in run_table1():
            assert row.period_des <= row.hydra_period <= row.period_max
            assert row.period_des <= row.single_period <= row.period_max

    def test_formatting(self):
        text = format_table1(run_table1())
        assert "Table I" in text
        assert "tw_own_binary" in text
        assert "bro_network" in text


class TestUavSystems:
    @pytest.mark.parametrize("cores", [2, 4, 8])
    def test_build_for_all_paper_core_counts(self, cores):
        hydra_system, hydra_alloc, single_system, single_alloc = (
            build_uav_systems(cores)
        )
        assert hydra_alloc.schedulable
        assert single_alloc.schedulable
        # SingleCore: every security task on the last core.
        assert {a.core for a in single_alloc.assignments} == {cores - 1}

    def test_hydra_spreads_security(self):
        _, hydra_alloc, _, _ = build_uav_systems(4)
        assert len({a.core for a in hydra_alloc.assignments}) >= 2


class TestFig1:
    def test_smoke_run(self, smoke):
        result = run_fig1(smoke)
        assert len(result.points) == len(smoke.core_counts)
        point = result.points[0]
        assert point.hydra.cdf.sample_size == smoke.sim_trials
        assert point.single.cdf.sample_size == smoke.sim_trials

    def test_hydra_detects_faster_at_default_seedset(self, smoke):
        # Use a slightly larger observation count for a stable sign.
        scale = smoke.with_overrides(sim_trials=40, sim_duration=60_000.0)
        result = run_fig1(scale)
        for point in result.points:
            assert point.speedup > 0.0

    def test_all_attacks_detected(self, smoke):
        result = run_fig1(smoke)
        for point in result.points:
            assert point.hydra.cdf.undetected == 0
            assert point.single.cdf.undetected == 0

    def test_formatting(self, smoke):
        text = format_fig1(run_fig1(smoke))
        assert "Fig. 1" in text
        assert "mean detection" in text

    def test_sporadic_release_mode(self, smoke):
        result = run_fig1(smoke, release_jitter=0.3)
        for point in result.points:
            assert point.hydra.cdf.sample_size == smoke.sim_trials

    def test_start_after_policy_no_slower(self, smoke):
        # A check that started after the attack detects no later than
        # one that additionally had to be *released* after it.
        release_after = run_fig1(smoke, policy="release-after")
        start_after = run_fig1(smoke, policy="start-after")
        for ra, sa in zip(release_after.points, start_after.points):
            assert sa.hydra.mean <= ra.hydra.mean + 1e-9
            assert sa.single.mean <= ra.single.mean + 1e-9


class TestFig2:
    def test_smoke_run_structure(self, smoke):
        result = run_fig2(smoke)
        assert result.core_counts == [2]
        panel = result.panel(2)
        assert len(panel) == 3  # smoke grid: 0.25, 0.5, 0.75 of M
        for point in panel:
            assert 0.0 <= point.ratio_hydra <= 1.0
            assert 0.0 <= point.ratio_single <= 1.0

    def test_low_utilization_parity(self, smoke):
        result = run_fig2(smoke)
        first = result.panel(2)[0]
        assert first.ratio_hydra == 1.0
        assert first.ratio_single == 1.0
        assert first.improvement == 0.0

    def test_hydra_never_below_singlecore(self, smoke):
        for point in run_fig2(smoke).points:
            assert point.ratio_hydra >= point.ratio_single - 1e-9

    def test_formatting(self, smoke):
        text = format_fig2(run_fig2(smoke))
        assert "Fig. 2" in text
        assert "improvement" in text


class TestFig3:
    def test_smoke_run(self, smoke):
        result = run_fig3(smoke)
        assert len(result.points) == 3
        for point in result.points:
            assert point.mean_gap >= 0.0
            assert point.max_gap >= point.mean_gap - 1e-9

    def test_gap_zero_at_low_utilization(self, smoke):
        result = run_fig3(smoke)
        assert result.points[0].mean_gap == pytest.approx(0.0, abs=1e-6)

    def test_exhaustive_and_bnb_agree(self, smoke):
        bnb = run_fig3(smoke, search="branch-bound")
        exhaustive = run_fig3(smoke, search="exhaustive")
        for a, b in zip(bnb.points, exhaustive.points):
            assert a.mean_gap == pytest.approx(b.mean_gap, abs=1e-6)

    def test_formatting(self, smoke):
        text = format_fig3(run_fig3(smoke))
        assert "Fig. 3" in text
        assert "worst observed" in text


class TestAblations:
    def test_solver_ablation(self, smoke):
        comparison = solver_ablation(smoke)
        schemes = comparison.schemes()
        assert "hydra" in schemes
        assert "hydra[exact-rta]" in schemes
        # Exact RTA accepts at least as much at every point.
        for cell_closed, cell_exact in zip(
            comparison.series("hydra"), comparison.series("hydra[exact-rta]")
        ):
            assert cell_exact.acceptance >= cell_closed.acceptance - 1e-9
        text = format_allocator_comparison(comparison, "solver")
        assert "acceptance" in text

    def test_core_choice_ablation(self, smoke):
        comparison = core_choice_ablation(smoke)
        assert "first-feasible" in comparison.schemes()
        for cell_hydra, cell_first in zip(
            comparison.series("hydra"), comparison.series("first-feasible")
        ):
            if cell_hydra.acceptance == cell_first.acceptance == 1.0:
                assert cell_hydra.mean_tightness >= (
                    cell_first.mean_tightness - 1e-9
                )

    def test_partitioning_ablation(self, smoke):
        from repro.experiments.ablations import partitioning_ablation

        comparison = partitioning_ablation(smoke, cores=2)
        assert set(comparison.schemes()) == {
            "best-fit", "worst-fit", "first-fit",
        }
        # Same utilisation grid for every heuristic.
        per_scheme = {
            s: [c.utilization for c in comparison.series(s)]
            for s in comparison.schemes()
        }
        grids = list(per_scheme.values())
        assert all(g == grids[0] for g in grids)

    def test_search_ablation_full_agreement(self, smoke):
        result = search_ablation(smoke)
        assert result.systems > 0
        assert result.agreements == result.systems
        assert result.bnb_lp_solves <= result.exhaustive_lp_solves
        assert "solve reduction" in format_search_ablation(result)

    def test_extension_ablation(self, smoke):
        cells = extension_ablation(smoke)
        modes = [c.mode for c in cells]
        assert modes == [
            "partitioned", "global", "non-preemptive", "precedence",
            "non-preemptive+aware",
        ]
        for cell in cells:
            assert not math.isinf(cell.mean_detection)
        by_mode = {c.mode: c for c in cells}
        # Partitioned preemptive security never misses RT deadlines.
        assert by_mode["partitioned"].missed_deadlines == 0
        # Naive non-preemptive execution blocks RT tasks...
        assert by_mode["non-preemptive"].missed_deadlines > 0
        # ...and the blocking-aware allocator repairs exactly that.
        assert by_mode["non-preemptive+aware"].missed_deadlines == 0
        assert "extensions" in format_extension_ablation(cells)
