"""Unit tests for experiment scaling presets."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.experiments.config import SCALES, ExperimentScale, get_scale


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_paper_matches_publication(self):
        paper = SCALES["paper"]
        assert paper.tasksets_per_point == 250
        assert paper.utilization_step == 0.025
        assert paper.utilization_start == 0.025
        assert paper.utilization_stop == 0.975
        assert paper.core_counts == (2, 4, 8)
        assert paper.sim_duration == 500_000.0

    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"

    def test_get_scale_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValidationError):
            get_scale("galactic")

    def test_with_overrides(self):
        scale = get_scale("smoke").with_overrides(seed=7)
        assert scale.seed == 7
        assert scale.name == "smoke"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentScale(
                name="bad",
                tasksets_per_point=0,
                utilization_step=0.1,
                core_counts=(2,),
                sim_trials=1,
                sim_duration=1.0,
                fig3_tasksets_per_point=1,
            )
        with pytest.raises(ValidationError):
            ExperimentScale(
                name="bad",
                tasksets_per_point=1,
                utilization_step=0.1,
                core_counts=(),
                sim_trials=1,
                sim_duration=1.0,
                fig3_tasksets_per_point=1,
            )
