"""Unit tests for the persistent worker pool and its engine plumbing.

The pool's contract: spawning is lazy and logged, one pool serves any
number of sweeps/engines, shutdown is explicit and survivable, and
none of it affects result bytes (per-point SeedSequence streams).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.experiments import pool as pool_module
from repro.experiments.parallel import SweepEngine, SweepSpec
from repro.experiments.pool import (
    WorkerPool,
    get_shared_pool,
    shutdown_shared_pool,
)

pytestmark = pytest.mark.usefixtures("_isolated_shared_pool")


@pytest.fixture
def _isolated_shared_pool():
    """Each test starts and ends with no process-wide pool."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


def _square(x: int) -> int:
    return x * x


def _calibration_spec(points: int = 4, seed: int = 7) -> SweepSpec:
    return SweepSpec(
        kind="calibration",
        seed=seed,
        points=tuple({"index": i} for i in range(points)),
    )


def _bytes(result) -> bytes:
    return json.dumps(result.payloads, sort_keys=True).encode()


class TestWorkerPool:
    def test_spawn_is_lazy(self):
        with WorkerPool(2) as pool:
            assert not pool.active
            assert pool.spawn_count == 0
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert pool.active
            assert pool.spawn_count == 1

    def test_reuse_does_not_respawn(self):
        with WorkerPool(2) as pool:
            for _ in range(3):
                assert pool.map(_square, [2]) == [4]
            assert pool.spawn_count == 1

    def test_serial_pool_never_spawns(self):
        pool = WorkerPool(1)
        assert pool.map(_square, [1, 2]) == [1, 4]
        assert not pool.active
        assert pool.spawn_count == 0

    def test_map_supports_infinite_companion_iterables(self):
        from itertools import repeat

        pool = WorkerPool(1)
        assert pool.map(pow, repeat(2), [1, 2, 3]) == [2, 4, 8]

    def test_shutdown_is_idempotent_and_survivable(self):
        pool = WorkerPool(2)
        pool.map(_square, [1])
        pool.shutdown()
        pool.shutdown()
        assert not pool.active
        # Using a shut-down pool simply respawns it.
        assert pool.map(_square, [3]) == [9]
        assert pool.spawn_count == 2
        pool.shutdown()

    def test_default_size_is_cpu_count(self):
        assert WorkerPool().max_workers >= 1

    def test_zero_means_serial_like_the_engine(self):
        pool = WorkerPool(0)
        assert pool.max_workers == 1
        assert pool.map(_square, [3]) == [9]
        assert pool.spawn_count == 0

    def test_limit_one_runs_inline(self):
        pool = WorkerPool(2)
        assert pool.map(_square, [1, 2, 3], limit=1) == [1, 4, 9]
        assert pool.spawn_count == 0

    def test_limit_caps_in_flight_but_keeps_order(self):
        with WorkerPool(3) as pool:
            assert pool.map(_square, list(range(7)), limit=2) == [
                i * i for i in range(7)
            ]

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            WorkerPool(-2)


class TestSharedPool:
    def test_shared_pool_is_a_singleton(self):
        first = get_shared_pool(2)
        assert get_shared_pool(2) is first
        assert get_shared_pool(1) is first  # smaller asks reuse it

    def test_growth_replaces_the_pool(self):
        small = get_shared_pool(1)
        grown = get_shared_pool(2)
        assert grown is not small
        assert grown.max_workers == 2
        assert get_shared_pool(1) is grown

    def test_shutdown_forgets_the_pool(self):
        first = get_shared_pool(2)
        shutdown_shared_pool()
        assert pool_module._shared_pool is None
        assert get_shared_pool(2) is not first

    def test_shutdown_without_pool_is_a_noop(self):
        shutdown_shared_pool()
        shutdown_shared_pool()


class TestEnginePlumbing:
    def test_engines_share_one_spawn_across_sweeps(self):
        """The whole point: N sweeps through M engines, one fork."""
        engines = [SweepEngine(workers=2) for _ in range(3)]
        for engine in engines:
            engine.run(_calibration_spec())
            engine.run(_calibration_spec(seed=8))
        shared = get_shared_pool(2)
        assert shared.spawn_count == 1
        assert all(engine.pool is shared for engine in engines)

    def test_serial_engine_never_touches_the_pool(self):
        SweepEngine(workers=1).run(_calibration_spec())
        assert pool_module._shared_pool is None

    def test_single_pending_point_runs_inline(self):
        SweepEngine(workers=4).run(_calibration_spec(points=1))
        assert pool_module._shared_pool is None

    def test_explicit_pool_is_used_and_not_shut_down(self):
        with WorkerPool(2) as pool:
            engine = SweepEngine(pool=pool)
            assert engine.workers == 2
            engine.run(_calibration_spec())
            assert pool.spawn_count == 1
            assert pool.active  # engine must not reap it
            assert pool_module._shared_pool is None

    def test_explicit_serial_pool_runs_inline(self):
        pool = WorkerPool(1)
        SweepEngine(pool=pool).run(_calibration_spec())
        assert pool.spawn_count == 0

    def test_pooled_run_is_byte_identical_to_serial(self):
        spec = _calibration_spec(points=6)
        serial = SweepEngine(workers=1).run(spec)
        with WorkerPool(2) as pool:
            pooled = SweepEngine(pool=pool).run(spec)
        assert _bytes(serial) == _bytes(pooled)

    def test_grown_shared_pool_is_not_revived_as_an_orphan(self):
        """After get_shared_pool grows the pool, an engine that had
        attached to the old one must pick up the replacement instead of
        respawning the shut-down pool privately."""
        engine = SweepEngine(workers=2)
        engine.run(_calibration_spec())
        old = get_shared_pool(2)
        grown = get_shared_pool(4)
        assert grown is not old and not old.active
        engine.run(_calibration_spec(seed=9))
        assert engine.pool is grown
        assert not old.active  # the orphan was never respawned
        assert old.spawn_count == 1

    def test_run_shims_thread_pool_through(self):
        """The deprecated run_X shims accept pool= and leave its
        lifecycle to the caller."""
        from repro.experiments.config import SCALES
        from repro.experiments.fig2 import run_fig2

        smoke = SCALES["smoke"]
        pool = WorkerPool(1)
        assert run_fig2(smoke, pool=pool) == run_fig2(smoke)
        assert pool.spawn_count == 0  # serial pool: inline, no fork

    def test_pool_property_reflects_lazy_attachment(self):
        engine = SweepEngine(workers=2)
        assert engine.pool is None
        engine.run(_calibration_spec())
        assert engine.pool is get_shared_pool(2)


class TestCalibrationRunner:
    def test_calibration_points_are_deterministic(self):
        spec = _calibration_spec(points=3)
        first = SweepEngine().run(spec)
        second = SweepEngine().run(spec)
        assert _bytes(first) == _bytes(second)
        values = [p["value"] for p in first.payloads]
        assert len(set(values)) == len(values)  # distinct streams
        assert all(0.0 <= v < 1.0 for v in values)
