"""Tests for TOML-defined scenario sweeps: parsing/validation, the
experiment itself, and engine determinism (serial ≡ parallel ≡ cached)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.experiments.cache import ResultCache
from repro.experiments.config import SCALES
from repro.experiments.parallel import SweepEngine
from repro.experiments.scenario import (
    ScenarioExperiment,
    combo_label,
    load_scenario,
    parse_scenario,
)

SMOKE = SCALES["smoke"]

GOOD_TOML = """
[sweep]
name = "mini"
tasksets_per_point = 3

[grid]
cores = [2, 4]
heuristic = ["best-fit", "worst-fit"]
ordering = ["rm", "utilization"]
admission = ["rta"]
"""


def _good_document() -> dict:
    return {
        "sweep": {"name": "mini", "tasksets_per_point": 3},
        "grid": {
            "cores": [2, 4],
            "heuristic": ["best-fit", "worst-fit"],
            "ordering": ["rm", "utilization"],
            "admission": ["rta"],
        },
    }


class TestParsing:
    def test_happy_path(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(GOOD_TOML)
        config = load_scenario(path)
        assert config.name == "mini"
        assert config.cores == (2, 4)
        assert config.tasksets_per_point == 3
        assert len(config.combos) == 4  # 2 heuristics × 2 orderings × 1 test
        assert config.combos[0] == {
            "heuristic": "best-fit", "ordering": "rm", "admission": "rta",
        }

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_scenario(tmp_path / "absent.toml")

    def test_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[grid\ncores = [2]")
        with pytest.raises(ValidationError, match="not valid TOML"):
            load_scenario(path)

    def test_missing_grid(self):
        with pytest.raises(ValidationError, match=r"\[grid\]"):
            parse_scenario({"sweep": {"name": "x"}})

    def test_unknown_heuristic_named_in_error(self):
        document = _good_document()
        document["grid"]["heuristic"] = ["best-fit", "magic-fit"]
        with pytest.raises(ValidationError, match="magic-fit"):
            parse_scenario(document)

    def test_unknown_ordering_rejected(self):
        document = _good_document()
        document["grid"]["ordering"] = ["alphabetical"]
        with pytest.raises(ValidationError, match="alphabetical"):
            parse_scenario(document)

    def test_unknown_admission_rejected(self):
        document = _good_document()
        document["grid"]["admission"] = ["vibes"]
        with pytest.raises(ValidationError, match="vibes"):
            parse_scenario(document)

    def test_empty_axis_rejected(self):
        document = _good_document()
        document["grid"]["heuristic"] = []
        with pytest.raises(ValidationError, match="non-empty"):
            parse_scenario(document)

    def test_bad_cores_rejected(self):
        document = _good_document()
        document["grid"]["cores"] = [0, 2]
        with pytest.raises(ValidationError, match="cores"):
            parse_scenario(document)

    def test_unknown_sweep_key_rejected(self):
        document = _good_document()
        document["sweep"]["taskset_per_point"] = 3  # typo
        with pytest.raises(ValidationError, match="taskset_per_point"):
            parse_scenario(document)

    def test_unknown_grid_key_rejected(self):
        document = _good_document()
        document["grid"]["heuristics"] = ["best-fit"]  # typo
        with pytest.raises(ValidationError, match="heuristics"):
            parse_scenario(document)

    def test_utilization_bounds_checked(self):
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.5, "stop": 1.5}
        with pytest.raises(ValidationError, match="stop"):
            parse_scenario(document)

    def test_duplicate_axis_values_rejected(self):
        document = _good_document()
        document["grid"]["heuristic"] = ["best-fit", "best-fit"]
        with pytest.raises(ValidationError, match="duplicate"):
            parse_scenario(document)

    def test_inverted_utilization_range_rejected_at_parse(self):
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.9, "stop": 0.3}
        with pytest.raises(ValidationError, match="must not exceed stop"):
            parse_scenario(document)

    def test_partial_override_inverting_scale_range_fails_cleanly(self):
        # start=0.9 alone passes parse (no stop to compare against) but
        # inverts against smoke's stop=0.75; sweeps() must reject it
        # with a message naming the effective range, not a raw
        # traceback from utilization_sweep.
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.9}
        experiment = ScenarioExperiment(parse_scenario(document))
        with pytest.raises(ValidationError, match="effective utilization"):
            experiment.sweeps(SMOKE)


def _mini_experiment() -> ScenarioExperiment:
    document = _good_document()
    document["grid"]["cores"] = [2]
    document["sweep"]["utilization"] = {
        "start": 0.25, "stop": 0.75, "step": 0.25,
    }
    return ScenarioExperiment(parse_scenario(document))


class TestScenarioExperiment:
    def test_sweep_specs_one_per_core_count(self):
        config = parse_scenario(_good_document())
        experiment = ScenarioExperiment(config)
        specs = experiment.sweeps(SMOKE)
        assert [s.params["cores"] for s in specs] == [2, 4]
        assert all(s.kind == "scenario" for s in specs)
        # distinct seeds per panel keep streams independent
        assert len({s.seed for s in specs}) == 2

    def test_run_produces_all_grid_cells(self):
        experiment = _mini_experiment()
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        labels = {c.scheme for c in panel.comparison.cells}
        assert labels == {
            combo_label(h, o, "rta")
            for h in ("best-fit", "worst-fit")
            for o in ("rm", "utilization")
        }
        for cell in panel.comparison.cells:
            assert 0.0 <= cell.acceptance <= 1.0
            assert 0.0 <= cell.mean_tightness <= 1.0

    def test_result_round_trips_and_renders(self):
        from repro.experiments import ExperimentResult

        experiment = _mini_experiment()
        result = experiment.run(SMOKE)
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded == result
        text = experiment.render(loaded)
        assert "bf-vs-wf" not in text  # this mini config is named 'mini'
        assert "mini" in text
        assert "best-fit/rm/rta" in text

    def test_serial_parallel_cached_byte_identical(self, tmp_path):
        experiment = _mini_experiment()
        (spec,) = experiment.sweeps(SMOKE)

        serial = SweepEngine(workers=1).run(spec)
        parallel = SweepEngine(workers=4).run(spec)
        assert (
            json.dumps(serial.payloads, sort_keys=True)
            == json.dumps(parallel.payloads, sort_keys=True)
        )

        cache = ResultCache(tmp_path)
        cold = SweepEngine(cache=cache).run(spec)
        assert cold.payloads == serial.payloads
        computed: list[int] = []
        warm = SweepEngine(
            cache=ResultCache(tmp_path), on_point_computed=computed.append
        ).run(spec)
        assert warm.payloads == serial.payloads
        assert computed == []  # warm run came entirely from the cache

    def test_shared_task_sets_make_rta_dominate_utilization_test(self):
        # On identical task sets, an exact-RTA admission can only accept
        # *more* than the (sufficient-only) utilisation-bound test.
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta", "utilization"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.9, "step": 0.2,
        }
        document["sweep"]["tasksets_per_point"] = 6
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        rta = panel.comparison.series("best-fit/utilization/rta")
        util = panel.comparison.series("best-fit/utilization/utilization")
        for rta_cell, util_cell in zip(rta, util):
            assert rta_cell.acceptance >= util_cell.acceptance


class TestAllocatorAxis:
    def test_parse_accepts_allocator_axis(self):
        document = _good_document()
        document["grid"]["allocator"] = ["hydra", "binpack-best-fit"]
        config = parse_scenario(document)
        assert config.allocator_axis
        assert config.allocators == ("hydra", "binpack-best-fit")
        assert config.combos[0] == {
            "allocator": "hydra", "heuristic": "best-fit",
            "ordering": "rm", "admission": "rta",
        }
        assert len(config.combos) == 2 * 4  # allocators × (h × o × a)

    def test_absent_axis_keeps_legacy_combos_and_labels(self):
        config = parse_scenario(_good_document())
        assert not config.allocator_axis
        assert config.allocators == ("hydra",)
        # byte-identity anchor: no 'allocator' key leaks into the sweep
        # params, so pre-existing cache entries stay valid
        assert all("allocator" not in combo for combo in config.combos)
        assert combo_label(**config.combos[0]) == "best-fit/rm/rta"

    def test_unknown_allocator_named_with_known_list(self):
        document = _good_document()
        document["grid"]["allocator"] = ["hydra", "quantum-fit"]
        with pytest.raises(ValidationError) as excinfo:
            parse_scenario(document)
        message = str(excinfo.value)
        assert "quantum-fit" in message and "hydra" in message

    def test_with_allocators_override(self):
        config = parse_scenario(_good_document())
        overridden = config.with_allocators(["binpack-worst-fit"])
        assert overridden.allocator_axis
        assert overridden.combos[0]["allocator"] == "binpack-worst-fit"
        from repro.allocators import UnknownAllocatorError

        with pytest.raises(UnknownAllocatorError, match="known allocators"):
            config.with_allocators(["nope"])

    def test_run_sweeps_strategies_on_shared_task_sets(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "allocator": ["hydra", "first-feasible", "binpack-first-fit"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.75, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 4
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        labels = {c.scheme for c in panel.comparison.cells}
        assert labels == {
            "hydra|best-fit/utilization/rta",
            "first-feasible|best-fit/utilization/rta",
            "binpack-first-fit|best-fit/utilization/rta",
        }
        # HYDRA maximises tightness per task; greedy first-feasible can
        # never beat it on the identical task sets.
        hydra = panel.comparison.series("hydra|best-fit/utilization/rta")
        first = panel.comparison.series(
            "first-feasible|best-fit/utilization/rta"
        )
        for h_cell, f_cell in zip(hydra, first):
            if h_cell.acceptance == f_cell.acceptance == 1.0:
                assert h_cell.mean_tightness >= f_cell.mean_tightness - 1e-9

    def test_singlecore_axis_builds_dedicated_core_system(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "allocator": ["singlecore"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.25, "stop": 0.5, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 3
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        cells = panel.comparison.series(
            "singlecore|best-fit/utilization/rta"
        )
        assert cells  # ran end to end without AllocationError
        assert any(c.acceptance > 0.0 for c in cells)

    def test_singlecore_rejected_on_single_core_panels(self):
        document = _good_document()
        document["grid"]["cores"] = [1, 2]
        document["grid"]["allocator"] = ["singlecore"]
        with pytest.raises(ValidationError, match="at least 2 cores"):
            parse_scenario(document)
        # the --allocator override path hits the same validation
        document = _good_document()
        document["grid"]["cores"] = [1]
        config = parse_scenario(document)
        with pytest.raises(ValidationError, match="at least 2 cores"):
            config.with_allocators(["singlecore"])

    def test_with_allocators_rejects_duplicates(self):
        config = parse_scenario(_good_document())
        with pytest.raises(ValidationError, match="more than once"):
            config.with_allocators(["hydra", "hydra"])


class TestWorkloadAxis:
    def test_parse_accepts_workload_axis(self):
        document = _good_document()
        document["grid"]["workload"] = ["paper-synthetic", "uunifast"]
        config = parse_scenario(document)
        assert config.workload_axis
        assert config.workloads == ("paper-synthetic", "uunifast")
        assert config.combos[0] == {
            "workload": "paper-synthetic", "heuristic": "best-fit",
            "ordering": "rm", "admission": "rta",
        }
        assert len(config.combos) == 2 * 4  # workloads × (h × o × a)

    def test_workload_composes_with_allocator_axis(self):
        document = _good_document()
        document["grid"]["workload"] = ["uunifast"]
        document["grid"]["allocator"] = ["hydra", "first-feasible"]
        config = parse_scenario(document)
        assert config.combos[0] == {
            "workload": "uunifast", "allocator": "hydra",
            "heuristic": "best-fit", "ordering": "rm", "admission": "rta",
        }
        assert combo_label(**config.combos[0]) == (
            "uunifast::hydra|best-fit/rm/rta"
        )

    def test_absent_axis_keeps_pr4_combos_labels_and_cache_keys(self):
        """Byte-identity anchor: without a ``workload`` axis the sweep
        spec — params, combos, key payloads — must match the PR 4
        shape exactly, so pre-existing cache entries stay valid."""
        config = parse_scenario(_good_document())
        assert not config.workload_axis
        assert config.workloads == ("paper-synthetic",)
        assert all("workload" not in combo for combo in config.combos)
        assert combo_label(**config.combos[0]) == "best-fit/rm/rta"

        experiment = ScenarioExperiment(config)
        spec = experiment.sweeps(SMOKE)[0]
        # exactly the PR 4 params surface: nothing workload-flavoured
        assert set(spec.params) == {"cores", "tasksets_per_point", "combos"}
        # and the cache key payload of point 0, pinned field by field
        from repro.experiments.store import CACHE_FORMAT

        assert spec.key_payload(0) == {
            "format": CACHE_FORMAT,
            "kind": "scenario",
            "seed": SMOKE.seed + 2,
            "index": 0,
            "point": dict(spec.points[0]),
            "params": {
                "cores": 2,
                "tasksets_per_point": 3,
                "combos": [
                    {"heuristic": h, "ordering": o, "admission": "rta"}
                    for h in ("best-fit", "worst-fit")
                    for o in ("rm", "utilization")
                ],
            },
        }

    def test_absent_axis_payloads_match_pre_registry_bytes(self):
        """The registry indirection (paper-synthetic) must not change a
        byte of an axis-less scenario sweep's payloads."""
        from repro.experiments.parallel import execute_point
        from repro.experiments.scenario import run_scenario_point
        from repro.taskgen.synthetic import generate_workload

        experiment = _mini_experiment()
        (spec,) = experiment.sweeps(SMOKE)
        payload = execute_point(spec, 1)

        # re-run the PR 4 logic inline: direct generate_workload calls
        def legacy_point(point, params, rng):
            from repro.allocators import get_allocator
            from repro.model.platform import Platform
            from repro.model.system import SystemModel
            from repro.partition.heuristics import try_partition_tasks

            platform = Platform(int(params["cores"]))
            combos = [dict(c) for c in params["combos"]]
            hydra = get_allocator("hydra")
            cells = {
                combo_label(**c): {
                    "accepted": 0, "total": 0, "tightness_sum": 0.0,
                }
                for c in combos
            }
            for _ in range(int(params["tasksets_per_point"])):
                workload = generate_workload(
                    platform, float(point["utilization"]), rng
                )
                for combo in combos:
                    cell = cells[combo_label(**combo)]
                    cell["total"] += 1
                    partition = try_partition_tasks(
                        workload.rt_tasks,
                        platform,
                        heuristic=combo["heuristic"],
                        admission=combo["admission"],
                        ordering=combo["ordering"],
                    )
                    if partition is None:
                        continue
                    system = SystemModel(
                        platform=platform,
                        rt_partition=partition,
                        security_tasks=workload.security_tasks,
                    )
                    allocation = hydra.allocate(system)
                    if allocation.schedulable:
                        cell["accepted"] += 1
                        cell["tightness_sum"] += (
                            allocation.mean_tightness()
                        )
            return {"cells": cells}

        assert run_scenario_point is not legacy_point
        expected = legacy_point(
            dict(spec.points[1]), dict(spec.params), spec.rng_for(1)
        )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_unknown_workload_named_with_known_list(self):
        document = _good_document()
        document["grid"]["workload"] = ["paper-synthetic", "quantum-foam"]
        with pytest.raises(ValidationError) as excinfo:
            parse_scenario(document)
        message = str(excinfo.value)
        assert "quantum-foam" in message and "paper-synthetic" in message

    def test_duplicate_workload_values_rejected(self):
        document = _good_document()
        document["grid"]["workload"] = ["uunifast", "uunifast"]
        with pytest.raises(ValidationError, match="duplicate"):
            parse_scenario(document)

    def test_with_workloads_override(self):
        config = parse_scenario(_good_document())
        overridden = config.with_workloads(["heavy-security"])
        assert overridden.workload_axis
        assert overridden.combos[0]["workload"] == "heavy-security"
        from repro.workloads import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError, match="known workloads"):
            config.with_workloads(["nope"])

    def test_with_workloads_rejects_duplicates(self):
        config = parse_scenario(_good_document())
        with pytest.raises(ValidationError, match="more than once"):
            config.with_workloads(["uunifast", "uunifast"])

    def test_run_sweeps_families_on_their_own_task_sets(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "workload": ["paper-synthetic", "heavy-security"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.75, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 4
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        labels = {c.scheme for c in panel.comparison.cells}
        assert labels == {
            "paper-synthetic::best-fit/utilization/rta",
            "heavy-security::best-fit/utilization/rta",
        }
        for cell in panel.comparison.cells:
            assert cell.total if hasattr(cell, "total") else True
            assert 0.0 <= cell.acceptance <= 1.0

    def test_case_study_workload_axis_runs(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "workload": ["uav-case-study"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.5, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 2
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        cells = panel.comparison.series(
            "uav-case-study::best-fit/utilization/rta"
        )
        # the fixed UAV + Table I system is schedulable on 2 cores
        assert all(c.acceptance == 1.0 for c in cells)

    def test_appending_a_family_keeps_earlier_families_bytes(self):
        """Families generate their point batches sequentially in grid
        order, so appending a family to the axis must not perturb the
        earlier families' cells (mirrors append-a-point semantics)."""
        from repro.experiments.parallel import execute_point

        def run(workloads):
            document = _good_document()
            document["grid"] = {
                "cores": [2],
                "workload": list(workloads),
                "heuristic": ["best-fit"],
                "ordering": ["utilization"],
                "admission": ["rta"],
            }
            document["sweep"]["utilization"] = {
                "start": 0.5, "stop": 0.75, "step": 0.25,
            }
            document["sweep"]["tasksets_per_point"] = 4
            experiment = ScenarioExperiment(parse_scenario(document))
            (spec,) = experiment.sweeps(SMOKE)
            return execute_point(spec, 0)

        alone = run(["uunifast"])
        extended = run(["uunifast", "heavy-security"])
        label = "uunifast::best-fit/utilization/rta"
        assert extended["cells"][label] == alone["cells"][label]

    def test_render_names_the_workload_axis(self):
        document = _good_document()
        document["grid"]["cores"] = [2]
        document["grid"]["workload"] = ["uunifast"]
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.5, "step": 0.25,
        }
        experiment = ScenarioExperiment(parse_scenario(document))
        result = experiment.run(SMOKE)
        text = experiment.render(result)
        assert "workload::heuristic/ordering/admission" in text
        assert "uunifast::best-fit/rm/rta" in text
