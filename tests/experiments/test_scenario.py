"""Tests for TOML-defined scenario sweeps: parsing/validation, the
experiment itself, and engine determinism (serial ≡ parallel ≡ cached)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.experiments.cache import ResultCache
from repro.experiments.config import SCALES
from repro.experiments.parallel import SweepEngine
from repro.experiments.scenario import (
    ScenarioExperiment,
    combo_label,
    load_scenario,
    parse_scenario,
)

SMOKE = SCALES["smoke"]

GOOD_TOML = """
[sweep]
name = "mini"
tasksets_per_point = 3

[grid]
cores = [2, 4]
heuristic = ["best-fit", "worst-fit"]
ordering = ["rm", "utilization"]
admission = ["rta"]
"""


def _good_document() -> dict:
    return {
        "sweep": {"name": "mini", "tasksets_per_point": 3},
        "grid": {
            "cores": [2, 4],
            "heuristic": ["best-fit", "worst-fit"],
            "ordering": ["rm", "utilization"],
            "admission": ["rta"],
        },
    }


class TestParsing:
    def test_happy_path(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(GOOD_TOML)
        config = load_scenario(path)
        assert config.name == "mini"
        assert config.cores == (2, 4)
        assert config.tasksets_per_point == 3
        assert len(config.combos) == 4  # 2 heuristics × 2 orderings × 1 test
        assert config.combos[0] == {
            "heuristic": "best-fit", "ordering": "rm", "admission": "rta",
        }

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_scenario(tmp_path / "absent.toml")

    def test_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[grid\ncores = [2]")
        with pytest.raises(ValidationError, match="not valid TOML"):
            load_scenario(path)

    def test_missing_grid(self):
        with pytest.raises(ValidationError, match=r"\[grid\]"):
            parse_scenario({"sweep": {"name": "x"}})

    def test_unknown_heuristic_named_in_error(self):
        document = _good_document()
        document["grid"]["heuristic"] = ["best-fit", "magic-fit"]
        with pytest.raises(ValidationError, match="magic-fit"):
            parse_scenario(document)

    def test_unknown_ordering_rejected(self):
        document = _good_document()
        document["grid"]["ordering"] = ["alphabetical"]
        with pytest.raises(ValidationError, match="alphabetical"):
            parse_scenario(document)

    def test_unknown_admission_rejected(self):
        document = _good_document()
        document["grid"]["admission"] = ["vibes"]
        with pytest.raises(ValidationError, match="vibes"):
            parse_scenario(document)

    def test_empty_axis_rejected(self):
        document = _good_document()
        document["grid"]["heuristic"] = []
        with pytest.raises(ValidationError, match="non-empty"):
            parse_scenario(document)

    def test_bad_cores_rejected(self):
        document = _good_document()
        document["grid"]["cores"] = [0, 2]
        with pytest.raises(ValidationError, match="cores"):
            parse_scenario(document)

    def test_unknown_sweep_key_rejected(self):
        document = _good_document()
        document["sweep"]["taskset_per_point"] = 3  # typo
        with pytest.raises(ValidationError, match="taskset_per_point"):
            parse_scenario(document)

    def test_unknown_grid_key_rejected(self):
        document = _good_document()
        document["grid"]["heuristics"] = ["best-fit"]  # typo
        with pytest.raises(ValidationError, match="heuristics"):
            parse_scenario(document)

    def test_utilization_bounds_checked(self):
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.5, "stop": 1.5}
        with pytest.raises(ValidationError, match="stop"):
            parse_scenario(document)

    def test_duplicate_axis_values_rejected(self):
        document = _good_document()
        document["grid"]["heuristic"] = ["best-fit", "best-fit"]
        with pytest.raises(ValidationError, match="duplicate"):
            parse_scenario(document)

    def test_inverted_utilization_range_rejected_at_parse(self):
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.9, "stop": 0.3}
        with pytest.raises(ValidationError, match="must not exceed stop"):
            parse_scenario(document)

    def test_partial_override_inverting_scale_range_fails_cleanly(self):
        # start=0.9 alone passes parse (no stop to compare against) but
        # inverts against smoke's stop=0.75; sweeps() must reject it
        # with a message naming the effective range, not a raw
        # traceback from utilization_sweep.
        document = _good_document()
        document["sweep"]["utilization"] = {"start": 0.9}
        experiment = ScenarioExperiment(parse_scenario(document))
        with pytest.raises(ValidationError, match="effective utilization"):
            experiment.sweeps(SMOKE)


def _mini_experiment() -> ScenarioExperiment:
    document = _good_document()
    document["grid"]["cores"] = [2]
    document["sweep"]["utilization"] = {
        "start": 0.25, "stop": 0.75, "step": 0.25,
    }
    return ScenarioExperiment(parse_scenario(document))


class TestScenarioExperiment:
    def test_sweep_specs_one_per_core_count(self):
        config = parse_scenario(_good_document())
        experiment = ScenarioExperiment(config)
        specs = experiment.sweeps(SMOKE)
        assert [s.params["cores"] for s in specs] == [2, 4]
        assert all(s.kind == "scenario" for s in specs)
        # distinct seeds per panel keep streams independent
        assert len({s.seed for s in specs}) == 2

    def test_run_produces_all_grid_cells(self):
        experiment = _mini_experiment()
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        labels = {c.scheme for c in panel.comparison.cells}
        assert labels == {
            combo_label(h, o, "rta")
            for h in ("best-fit", "worst-fit")
            for o in ("rm", "utilization")
        }
        for cell in panel.comparison.cells:
            assert 0.0 <= cell.acceptance <= 1.0
            assert 0.0 <= cell.mean_tightness <= 1.0

    def test_result_round_trips_and_renders(self):
        from repro.experiments import ExperimentResult

        experiment = _mini_experiment()
        result = experiment.run(SMOKE)
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded == result
        text = experiment.render(loaded)
        assert "bf-vs-wf" not in text  # this mini config is named 'mini'
        assert "mini" in text
        assert "best-fit/rm/rta" in text

    def test_serial_parallel_cached_byte_identical(self, tmp_path):
        experiment = _mini_experiment()
        (spec,) = experiment.sweeps(SMOKE)

        serial = SweepEngine(workers=1).run(spec)
        parallel = SweepEngine(workers=4).run(spec)
        assert (
            json.dumps(serial.payloads, sort_keys=True)
            == json.dumps(parallel.payloads, sort_keys=True)
        )

        cache = ResultCache(tmp_path)
        cold = SweepEngine(cache=cache).run(spec)
        assert cold.payloads == serial.payloads
        computed: list[int] = []
        warm = SweepEngine(
            cache=ResultCache(tmp_path), on_point_computed=computed.append
        ).run(spec)
        assert warm.payloads == serial.payloads
        assert computed == []  # warm run came entirely from the cache

    def test_shared_task_sets_make_rta_dominate_utilization_test(self):
        # On identical task sets, an exact-RTA admission can only accept
        # *more* than the (sufficient-only) utilisation-bound test.
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta", "utilization"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.9, "step": 0.2,
        }
        document["sweep"]["tasksets_per_point"] = 6
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        rta = panel.comparison.series("best-fit/utilization/rta")
        util = panel.comparison.series("best-fit/utilization/utilization")
        for rta_cell, util_cell in zip(rta, util):
            assert rta_cell.acceptance >= util_cell.acceptance


class TestAllocatorAxis:
    def test_parse_accepts_allocator_axis(self):
        document = _good_document()
        document["grid"]["allocator"] = ["hydra", "binpack-best-fit"]
        config = parse_scenario(document)
        assert config.allocator_axis
        assert config.allocators == ("hydra", "binpack-best-fit")
        assert config.combos[0] == {
            "allocator": "hydra", "heuristic": "best-fit",
            "ordering": "rm", "admission": "rta",
        }
        assert len(config.combos) == 2 * 4  # allocators × (h × o × a)

    def test_absent_axis_keeps_legacy_combos_and_labels(self):
        config = parse_scenario(_good_document())
        assert not config.allocator_axis
        assert config.allocators == ("hydra",)
        # byte-identity anchor: no 'allocator' key leaks into the sweep
        # params, so pre-existing cache entries stay valid
        assert all("allocator" not in combo for combo in config.combos)
        assert combo_label(**config.combos[0]) == "best-fit/rm/rta"

    def test_unknown_allocator_named_with_known_list(self):
        document = _good_document()
        document["grid"]["allocator"] = ["hydra", "quantum-fit"]
        with pytest.raises(ValidationError) as excinfo:
            parse_scenario(document)
        message = str(excinfo.value)
        assert "quantum-fit" in message and "hydra" in message

    def test_with_allocators_override(self):
        config = parse_scenario(_good_document())
        overridden = config.with_allocators(["binpack-worst-fit"])
        assert overridden.allocator_axis
        assert overridden.combos[0]["allocator"] == "binpack-worst-fit"
        from repro.allocators import UnknownAllocatorError

        with pytest.raises(UnknownAllocatorError, match="known allocators"):
            config.with_allocators(["nope"])

    def test_run_sweeps_strategies_on_shared_task_sets(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "allocator": ["hydra", "first-feasible", "binpack-first-fit"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.5, "stop": 0.75, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 4
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        labels = {c.scheme for c in panel.comparison.cells}
        assert labels == {
            "hydra|best-fit/utilization/rta",
            "first-feasible|best-fit/utilization/rta",
            "binpack-first-fit|best-fit/utilization/rta",
        }
        # HYDRA maximises tightness per task; greedy first-feasible can
        # never beat it on the identical task sets.
        hydra = panel.comparison.series("hydra|best-fit/utilization/rta")
        first = panel.comparison.series(
            "first-feasible|best-fit/utilization/rta"
        )
        for h_cell, f_cell in zip(hydra, first):
            if h_cell.acceptance == f_cell.acceptance == 1.0:
                assert h_cell.mean_tightness >= f_cell.mean_tightness - 1e-9

    def test_singlecore_axis_builds_dedicated_core_system(self):
        document = _good_document()
        document["grid"] = {
            "cores": [2],
            "allocator": ["singlecore"],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        }
        document["sweep"]["utilization"] = {
            "start": 0.25, "stop": 0.5, "step": 0.25,
        }
        document["sweep"]["tasksets_per_point"] = 3
        experiment = ScenarioExperiment(parse_scenario(document))
        domain = experiment.run_domain(SMOKE)
        (panel,) = domain.panels
        cells = panel.comparison.series(
            "singlecore|best-fit/utilization/rta"
        )
        assert cells  # ran end to end without AllocationError
        assert any(c.acceptance > 0.0 for c in cells)

    def test_singlecore_rejected_on_single_core_panels(self):
        document = _good_document()
        document["grid"]["cores"] = [1, 2]
        document["grid"]["allocator"] = ["singlecore"]
        with pytest.raises(ValidationError, match="at least 2 cores"):
            parse_scenario(document)
        # the --allocator override path hits the same validation
        document = _good_document()
        document["grid"]["cores"] = [1]
        config = parse_scenario(document)
        with pytest.raises(ValidationError, match="at least 2 cores"):
            config.with_allocators(["singlecore"])

    def test_with_allocators_rejects_duplicates(self):
        config = parse_scenario(_good_document())
        with pytest.raises(ValidationError, match="more than once"):
            config.with_allocators(["hydra", "hydra"])
