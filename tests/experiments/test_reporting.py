"""Unit tests for the text reporting helpers."""

from __future__ import annotations

import math

from repro.experiments.reporting import format_series, format_table, percent


class TestPercent:
    def test_basic(self):
        assert percent(12.3456) == "12.35%"
        assert percent(12.3456, digits=1) == "12.3%"

    def test_infinities(self):
        assert percent(math.inf) == "inf"
        assert percent(-math.inf) == "-inf"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["c"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_contains_extents(self):
        text = format_series([0, 1, 2], [5.0, 7.0, 6.0], label="demo ")
        assert "demo" in text
        assert "[5, 7]" in text

    def test_skips_non_finite(self):
        text = format_series([0, 1, 2], [1.0, math.inf, 2.0])
        # Only two points plotted → width 2 body rows.
        body = [l for l in text.splitlines() if l.startswith("|")]
        assert all(len(l) <= 3 for l in body)

    def test_no_data(self):
        assert "no data" in format_series([], [])

    def test_constant_series(self):
        text = format_series([0, 1], [3.0, 3.0])
        assert "[3, 3]" in text
