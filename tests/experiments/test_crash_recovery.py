"""Crash recovery: broken worker pools, read-only stores, torn tmp files.

Pins the interrupt-safety and cache-store fixes: a pool whose workers
died (OOM-killed, ^C) is reaped and respawned — or falls back to
serial — instead of poisoning every later sweep with
``BrokenProcessPool``; a ``readonly=True`` store never writes, even
when it has to rebuild its index on a chmod-0555 cache dir; and
orphaned ``*.tmp`` files from a crash between tmp-write and
``os.replace`` are cleaned up on the next writable open — but only
once stale, so a live concurrent writer's in-flight temporary is
never reaped out from under it.
"""

from __future__ import annotations

import logging
import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.errors import SweepCancelled
from repro.experiments.parallel import SweepEngine, SweepSpec
from repro.experiments.pool import (
    WorkerPool,
    get_shared_pool,
    shutdown_shared_pool,
)
from repro.experiments.store import _TMP_STALE_SECONDS, ResultStore


def _double(x):
    return x * 2


class _BrokenExecutor:
    """Quacks like a ProcessPoolExecutor whose workers all died."""

    _broken = "A child process terminated abruptly"

    def __init__(self):
        self.shutdown_calls = 0

    def shutdown(self, wait=True):
        self.shutdown_calls += 1


@pytest.fixture
def isolated_shared_pool():
    """Run a test against a fresh shared pool and reap it after."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


class TestBrokenPoolRecovery:
    def test_reap_if_broken_discards_dead_executor(self):
        pool = WorkerPool(2)
        dead = _BrokenExecutor()
        pool._executor = dead
        assert pool._reap_if_broken() is True
        assert pool._executor is None
        assert dead.shutdown_calls == 1
        # Idempotent: nothing left to reap.
        assert pool._reap_if_broken() is False

    def test_reap_logs_recovery(self, caplog):
        pool = WorkerPool(2)
        pool._executor = _BrokenExecutor()
        with caplog.at_level(logging.WARNING, logger="repro.pool"):
            pool._reap_if_broken()
        assert any("reaping dead executor" in r.message for r in caplog.records)

    def test_map_respawns_once_after_broken_pool(self, monkeypatch):
        pool = WorkerPool(2)
        attempts = []
        real_dispatch = WorkerPool._dispatch

        def flaky_dispatch(self, fn, calls, limit):
            attempts.append(len(calls))
            if len(attempts) == 1:
                raise BrokenProcessPool("workers died")
            return real_dispatch(self, fn, calls, limit)

        monkeypatch.setattr(WorkerPool, "_dispatch", flaky_dispatch)
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert len(attempts) == 2  # broke once, respawned, succeeded
        pool.shutdown()

    def test_map_falls_back_to_serial_when_respawn_breaks_too(
        self, monkeypatch, caplog
    ):
        pool = WorkerPool(2)

        def always_broken(self, fn, calls, limit):
            raise BrokenProcessPool("workers keep dying")

        monkeypatch.setattr(WorkerPool, "_dispatch", always_broken)
        with caplog.at_level(logging.WARNING, logger="repro.pool"):
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        messages = [r.message for r in caplog.records]
        assert any("respawning and retrying once" in m for m in messages)
        assert any("serially in-process" in m for m in messages)
        assert not pool.active  # no dead executor left behind

    def test_map_reaps_pool_on_keyboard_interrupt(self, monkeypatch):
        pool = WorkerPool(2)

        def interrupted(self, fn, calls, limit):
            self._ensure_executor()
            raise KeyboardInterrupt

        monkeypatch.setattr(WorkerPool, "_dispatch", interrupted)
        with pytest.raises(KeyboardInterrupt):
            pool.map(_double, [1])
        # The executor was reaped, not left broken for the next sweep.
        assert not pool.active

    def test_get_shared_pool_reaps_broken_executor_on_reuse(
        self, isolated_shared_pool
    ):
        first = get_shared_pool(2)
        dead = _BrokenExecutor()
        first._executor = dead
        again = get_shared_pool(2)
        assert again is first  # same pool object, not a replacement
        assert again._executor is None  # …but the dead executor is gone
        assert dead.shutdown_calls == 1

    def test_serial_pool_is_untouched_by_recovery_paths(self):
        pool = WorkerPool(1)
        assert pool.map(_double, [4]) == [8]
        assert pool.spawn_count == 0
        assert pool._reap_if_broken() is False


def _mini_spec(n_points: int = 3) -> SweepSpec:
    return SweepSpec(
        kind="crash-recovery-mini",
        params={"scale": "test"},
        points=tuple({"x": i} for i in range(n_points)),
        seed=7,
    )


@pytest.fixture(autouse=True)
def _echo_runner():
    from repro.experiments.parallel import _POINT_RUNNERS

    def echo(point, params, stream):
        return {"x2": point["x"] * 2}

    _POINT_RUNNERS["crash-recovery-mini"] = echo
    yield
    _POINT_RUNNERS.pop("crash-recovery-mini", None)


class TestCooperativeCancel:
    def test_immediate_cancel_raises_before_computing(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = SweepEngine(
            workers=1, cache=store, should_cancel=lambda: True
        )
        with pytest.raises(SweepCancelled):
            engine.run(_mini_spec())
        assert len(store) == 0  # nothing computed, nothing cached

    def test_partial_cancel_keeps_batches_and_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        computed = []

        def cancel_after_first_batch() -> bool:
            return len(computed) >= 1

        engine = SweepEngine(
            workers=1,
            cache=store,
            on_point_computed=computed.append,
            should_cancel=cancel_after_first_batch,
        )
        with pytest.raises(SweepCancelled):
            engine.run(_mini_spec())
        assert 1 <= len(computed) < 3
        assert len(store) == len(computed)  # finished batches persisted

        # A fresh, uncancelled engine resumes from the cache.
        resumed = SweepEngine(workers=1, cache=store).run(_mini_spec())
        assert resumed.stats.cached_points == len(computed)
        assert resumed.stats.computed_points == 3 - len(computed)
        assert [p["x2"] for p in resumed.payloads] == [0, 2, 4]

    def test_no_cancel_hook_means_one_batch(self, tmp_path):
        engine = SweepEngine(workers=1, cache=str(tmp_path / "cache"))
        result = engine.run(_mini_spec())
        assert result.stats.computed_points == 3


def _lock_tree(root) -> None:
    for dirpath, _dirnames, filenames in os.walk(root, topdown=False):
        for name in filenames:
            os.chmod(os.path.join(dirpath, name), 0o444)
        os.chmod(dirpath, 0o555)


def _unlock_tree(root) -> None:
    for dirpath, _dirnames, filenames in os.walk(root):
        os.chmod(dirpath, 0o755)
        for name in filenames:
            os.chmod(os.path.join(dirpath, name), 0o644)


def _tree_state(root):
    """(path, size, mtime_ns) of every file under ``root``."""
    state = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            info = os.stat(path)
            state.append((path, info.st_size, info.st_mtime_ns))
    return sorted(state)


# chmod makes the tree genuinely unwritable for unprivileged users;
# root bypasses permission bits, so the real pin is the byte-for-byte
# tree-state comparison — any write (new file, append, index persist)
# changes a size or mtime and fails the test either way.
class TestReadonlyStoreNeverWrites:
    def test_readonly_get_on_unwritable_dir(self, tmp_path):
        cache = tmp_path / "cache"
        writable = ResultStore(cache)
        key = {"x": 1}
        writable.put("kind", key, {"v": 42})
        # Force the index-rebuild path: drop the index file before
        # locking the tree down.
        for index_file in cache.rglob("index.jsonl"):
            index_file.unlink()
        _lock_tree(cache)
        try:
            before = _tree_state(cache)
            store = ResultStore(cache, readonly=True)
            assert store.get("kind", key) == {"v": 42}
            assert _tree_state(cache) == before  # zero writes
            assert not list(cache.rglob("index.jsonl"))
        finally:
            _unlock_tree(cache)

    def test_readonly_stats_on_unwritable_dir(self, tmp_path):
        cache = tmp_path / "cache"
        ResultStore(cache).put("kind", {"x": 1}, {"v": 1})
        _lock_tree(cache)
        try:
            before = _tree_state(cache)
            stats = ResultStore(cache, readonly=True).stats()
            assert stats["entries"] == 1
            assert _tree_state(cache) == before
        finally:
            _unlock_tree(cache)


def _age(path, seconds: float) -> None:
    """Backdate ``path``'s mtime by ``seconds``."""
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


class TestTornTmpCleanup:
    def test_stale_orphaned_index_tmp_is_removed_on_open(self, tmp_path):
        cache = tmp_path / "cache"
        store = ResultStore(cache)
        store.put("kind", {"x": 1}, {"v": 1})
        shard_dir = next(p.parent for p in cache.rglob("data.jsonl"))
        torn = shard_dir / "index.jsonl.tmp"
        torn.write_text('{"torn": "garbage from a crashed writer"\n')
        _age(torn, _TMP_STALE_SECONDS + 60)

        reopened = ResultStore(cache)
        assert reopened.get("kind", {"x": 1}) == {"v": 1}
        assert not torn.exists()

    def test_fresh_tmp_from_live_writer_is_left_alone(self, tmp_path):
        # The serve process and the CLI share one cache dir; a young
        # tmp may be another process's in-flight atomic write, and
        # reaping it would break that process's os.replace mid-write.
        cache = tmp_path / "cache"
        store = ResultStore(cache)
        store.put("kind", {"x": 1}, {"v": 1})
        shard_dir = next(p.parent for p in cache.rglob("data.jsonl"))
        in_flight = shard_dir / "index.jsonl.99999.tmp"
        in_flight.write_text("{}\n")

        reopened = ResultStore(cache)
        assert reopened.get("kind", {"x": 1}) == {"v": 1}
        assert in_flight.exists()

    def test_stale_pid_suffixed_tmp_is_removed_on_open(self, tmp_path):
        cache = tmp_path / "cache"
        store = ResultStore(cache)
        store.put("kind", {"x": 1}, {"v": 1})
        shard_dir = next(p.parent for p in cache.rglob("data.jsonl"))
        torn = shard_dir / "data.jsonl.99999.tmp"
        torn.write_text("{}\n")
        _age(torn, _TMP_STALE_SECONDS + 60)

        ResultStore(cache).get("kind", {"x": 1})
        assert not torn.exists()

    def test_readonly_open_leaves_torn_tmp_alone(self, tmp_path):
        cache = tmp_path / "cache"
        store = ResultStore(cache)
        store.put("kind", {"x": 1}, {"v": 1})
        shard_dir = next(p.parent for p in cache.rglob("data.jsonl"))
        torn = shard_dir / "index.jsonl.tmp"
        torn.write_text("{}\n")
        _age(torn, _TMP_STALE_SECONDS + 60)

        readonly = ResultStore(cache, readonly=True)
        assert readonly.get("kind", {"x": 1}) == {"v": 1}
        assert torn.exists()  # readonly handles never touch the disk
