"""Unit tests for the sharded columnar result store (cache v2).

Covers the storage contract the engine leans on — batched get/put,
byte-exact JSON round trips, crash tolerance (torn lines, lost index),
the typed fail-fast error on unusable roots — and the v1 migration
path end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CacheError, ReproError, ValidationError
from repro.experiments.store import (
    STORE_FORMAT,
    ResultStore,
    cache_key,
    write_v1_entry,
)


def _key(i: int) -> dict:
    return {"format": 1, "kind": "demo", "seed": 42, "index": i}


def _payload(i: int) -> dict:
    return {"value": i * 1.5, "items": list(range(i % 3))}


def _fill(store: ResultStore, n: int = 5, kind: str = "demo") -> None:
    store.put_many(kind, [(_key(i), _payload(i)) for i in range(n)])


class TestRoundTrip:
    def test_put_get_single(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("demo", _key(0), _payload(0))
        assert store.get("demo", _key(0)) == _payload(0)
        assert store.hits == 1

    def test_get_many_preserves_order_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store, 3)
        results = store.get_many(
            "demo", [_key(2), _key(9), _key(0)]
        )
        assert results == [_payload(2), None, _payload(0)]
        assert store.hits == 2 and store.misses == 1

    def test_round_trip_survives_json_exactly(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"nested": {"a": [1, 2.5, None, "x"]}, "flag": True}
        store.put("demo", _key(1), payload)
        reread = ResultStore(tmp_path).get("demo", _key(1))
        assert json.dumps(reread, sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_persists_across_instances(self, tmp_path):
        _fill(ResultStore(tmp_path), 4)
        store = ResultStore(tmp_path)
        assert len(store) == 4
        assert store.get("demo", _key(3)) == _payload(3)

    def test_kinds_are_isolated_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("alpha", _key(0), {"v": "a"})
        store.put("beta", _key(0), {"v": "b"})
        assert store.get("alpha", _key(0)) == {"v": "a"}
        assert store.get("beta", _key(0)) == {"v": "b"}
        assert (tmp_path / "alpha" / "data.jsonl").exists()
        assert (tmp_path / "beta" / "data.jsonl").exists()

    def test_overwrite_returns_latest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("demo", _key(0), {"v": 1})
        store.put("demo", _key(0), {"v": 2})
        assert store.get("demo", _key(0)) == {"v": 2}
        assert ResultStore(tmp_path).get("demo", _key(0)) == {"v": 2}

    def test_empty_batches_are_noops(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_many("demo", []) == []
        assert store.put_many("demo", []) == 0

    def test_invalid_kind_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for kind in ("", "a/b", ".hidden"):
            with pytest.raises(ValidationError):
                store.put(kind, _key(0), {})


class TestCrashTolerance:
    def test_lost_index_is_rebuilt_from_data(self, tmp_path):
        _fill(ResultStore(tmp_path), 4)
        (tmp_path / "demo" / "index.jsonl").unlink()
        store = ResultStore(tmp_path)
        assert store.get("demo", _key(2)) == _payload(2)
        assert (tmp_path / "demo" / "index.jsonl").exists()

    def test_torn_trailing_data_line_is_invisible(self, tmp_path):
        _fill(ResultStore(tmp_path), 3)
        data = tmp_path / "demo" / "data.jsonl"
        with data.open("ab") as handle:
            handle.write(b'{"key": {"format": 1, "kind": "de')  # killed
        store = ResultStore(tmp_path)
        assert len(store) == 3
        assert store.get("demo", _key(1)) == _payload(1)

    def test_torn_index_line_triggers_rebuild(self, tmp_path):
        _fill(ResultStore(tmp_path), 3)
        index = tmp_path / "demo" / "index.jsonl"
        with index.open("ab") as handle:
            handle.write(b'{"h": "dead')
        store = ResultStore(tmp_path)
        assert len(store) == 3
        assert store.get("demo", _key(0)) == _payload(0)

    def test_unindexed_data_records_are_recovered(self, tmp_path):
        """Crash window between append_many's data flush and its index
        append: the flushed records must be rediscovered by the
        coverage check, not silently lost."""
        store = ResultStore(tmp_path)
        _fill(store, 3)
        orphan = ResultStore(tmp_path)
        orphan.put("demo", _key(7), _payload(7))
        # Simulate the crash: drop the orphan's index line only.
        index = tmp_path / "demo" / "index.jsonl"
        lines = index.read_bytes().splitlines(keepends=True)
        index.write_bytes(b"".join(lines[:3]))
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 4
        assert reopened.get("demo", _key(7)) == _payload(7)

    def test_append_after_torn_tail_stays_rebuildable(self, tmp_path):
        """A new record appended after a torn tail must not fuse with
        it into one unparsable line."""
        _fill(ResultStore(tmp_path), 2)
        data = tmp_path / "demo" / "data.jsonl"
        with data.open("ab") as handle:
            handle.write(b'{"key": {"torn')  # killed mid-write
        store = ResultStore(tmp_path)
        store.put("demo", _key(7), _payload(7))
        assert store.get("demo", _key(7)) == _payload(7)
        (tmp_path / "demo" / "index.jsonl").unlink()
        rebuilt = ResultStore(tmp_path)
        assert len(rebuilt) == 3  # both old and new survived the scan
        assert rebuilt.get("demo", _key(7)) == _payload(7)

    def test_truncated_data_downgrades_to_misses(self, tmp_path):
        _fill(ResultStore(tmp_path), 3)
        data = tmp_path / "demo" / "data.jsonl"
        data.write_bytes(data.read_bytes()[:10])
        store = ResultStore(tmp_path)
        results = store.get_many("demo", [_key(i) for i in range(3)])
        assert all(r is None for r in results)

    def test_hash_collision_audit(self, tmp_path):
        """An entry whose stored key disagrees with the probe key is a
        miss, even though the sha256 bucket matches."""
        store = ResultStore(tmp_path)
        store.put("demo", _key(0), _payload(0))
        shard = store._shard("demo")
        digest = cache_key(_key(1))  # alias key 1's bucket at key 0's data
        shard.index[digest] = next(iter(shard.index.values()))
        assert store.get("demo", _key(1)) is None


class TestFailFast:
    def test_unusable_root_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        with pytest.raises(CacheError):
            ResultStore(blocker / "cache")

    def test_cache_error_is_typed_and_catchable(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(ReproError):
            ResultStore(blocker / "cache")
        with pytest.raises(OSError):  # legacy handlers keep working
            ResultStore(blocker / "cache")

    def test_future_format_marker_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text(
            json.dumps({"format": STORE_FORMAT + 1})
        )
        with pytest.raises(CacheError):
            ResultStore(tmp_path)

    def test_garbage_marker_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text("not json at all")
        with pytest.raises(CacheError):
            ResultStore(tmp_path)


class TestReadonly:
    def test_reads_but_never_writes(self, tmp_path):
        _fill(ResultStore(tmp_path), 3)
        (tmp_path / "demo" / "index.jsonl").unlink()
        snapshot = sorted(p.name for p in tmp_path.rglob("*"))
        store = ResultStore(tmp_path, readonly=True)
        assert store.get("demo", _key(1)) == _payload(1)  # index rebuilt…
        assert store.stats()["entries"] == 3
        # …but only in memory: not a single file created or touched.
        assert sorted(p.name for p in tmp_path.rglob("*")) == snapshot

    def test_missing_root_reads_as_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent", readonly=True)
        assert store.get("demo", _key(0)) is None
        assert store.stats()["entries"] == 0
        assert not (tmp_path / "absent").exists()

    def test_write_verbs_raise(self, tmp_path):
        _fill(ResultStore(tmp_path), 1)
        store = ResultStore(tmp_path, readonly=True)
        with pytest.raises(CacheError):
            store.put("demo", _key(9), _payload(9))
        with pytest.raises(CacheError):
            store.migrate()
        with pytest.raises(CacheError):
            store.gc()
        with pytest.raises(CacheError):
            store.clear()


class TestMigration:
    def _v1_dir(self, tmp_path, n: int = 4):
        for i in range(n):
            write_v1_entry(tmp_path, "demo", _key(i), _payload(i))
        return tmp_path

    def test_open_migrates_v1_automatically(self, tmp_path):
        self._v1_dir(tmp_path)
        store = ResultStore(tmp_path)
        assert len(store) == 4
        assert store.get("demo", _key(2)) == _payload(2)
        # v1 files consumed, marker written: the scan never reruns.
        assert store.pending_v1_entries() == 0
        assert (tmp_path / "store.json").exists()
        assert not list((tmp_path / "demo").glob("*[0-9a-f]*.json"))

    def test_migrate_false_leaves_directory_untouched(self, tmp_path):
        self._v1_dir(tmp_path)
        store = ResultStore(tmp_path, migrate=False)
        assert store.pending_v1_entries() == 4
        assert not (tmp_path / "store.json").exists()

    def test_explicit_migrate_reports_count(self, tmp_path):
        self._v1_dir(tmp_path, 3)
        store = ResultStore(tmp_path, migrate=False)
        assert store.migrate() == 3
        assert store.migrate() == 0  # idempotent

    def test_corrupt_v1_entries_are_skipped(self, tmp_path):
        self._v1_dir(tmp_path, 2)
        bad = tmp_path / "demo" / ("f" * 64 + ".json")
        bad.write_text("{ torn")
        store = ResultStore(tmp_path)
        assert len(store) == 2

    def test_migrated_keys_hit_without_recompute(self, tmp_path):
        """The migration invariant: v1 keys == v2 keys, so a migrated
        store serves the exact entries the v1 cache held."""
        self._v1_dir(tmp_path)
        store = ResultStore(tmp_path)
        results = store.get_many("demo", [_key(i) for i in range(4)])
        assert results == [_payload(i) for i in range(4)]
        assert store.misses == 0


class TestMaintenance:
    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store, 3)
        _fill(store, 2, kind="other")
        assert len(store) == 5
        assert store.clear() == 5
        assert len(store) == 0
        assert ResultStore(tmp_path).get("demo", _key(0)) is None

    def test_gc_compacts_superseded_records(self, tmp_path):
        store = ResultStore(tmp_path)
        for _ in range(5):  # 5 generations of the same 3 keys
            _fill(store, 3)
        before = (tmp_path / "demo" / "data.jsonl").stat().st_size
        summary = store.gc()
        after = (tmp_path / "demo" / "data.jsonl").stat().st_size
        assert summary["entries"] == 3
        assert summary["reclaimed_bytes"] > 0
        assert after < before
        assert store.get("demo", _key(1)) == _payload(1)
        assert ResultStore(tmp_path).get("demo", _key(2)) == _payload(2)

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store, 3)
        stats = store.stats()
        assert stats["format"] == STORE_FORMAT
        assert stats["entries"] == 3
        assert stats["shards"]["demo"]["entries"] == 3
        assert stats["data_bytes"] > 0
        assert stats["pending_v1_entries"] == 0
