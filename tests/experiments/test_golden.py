"""Golden-regression tests: fixed-seed curves pinned as checked-in JSON.

Each fixture stores both human-reviewable aggregates (acceptance
counts, detection times) and a sha256 over the full per-point payloads.
The sweep engine must reproduce them *exactly* — in serial mode, in
parallel mode, and through a cache round-trip.  If one of these tests
fails after an intended behaviour change, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated fixtures with the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.golden import GOLDEN_FIXTURES, golden_summary
from repro.experiments.parallel import SweepEngine

GOLDEN_DIR = Path(__file__).parent / "golden"

_NAMES = sorted(GOLDEN_FIXTURES)


def _fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"'PYTHONPATH=src python tools/regen_golden.py'"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", _NAMES)
def test_serial_engine_reproduces_fixture(name):
    assert golden_summary(name, SweepEngine(workers=1)) == _fixture(name)


@pytest.mark.parametrize("name", _NAMES)
def test_parallel_engine_reproduces_fixture(name):
    assert golden_summary(name, SweepEngine(workers=4)) == _fixture(name)


def test_cached_rerun_reproduces_fixture(tmp_path):
    name = "fig2_mini"
    cache = ResultCache(tmp_path)
    cold = golden_summary(name, SweepEngine(cache=cache))
    assert cold == _fixture(name)

    computed: list[int] = []
    warm_engine = SweepEngine(
        cache=ResultCache(tmp_path), on_point_computed=computed.append
    )
    assert golden_summary(name, warm_engine) == _fixture(name)
    assert computed == []  # second run came entirely from the cache


def test_fixture_sanity():
    """The pinned curve itself shows the paper's qualitative shape."""
    fig2 = _fixture("fig2_mini")
    points = fig2["points"]
    assert [p["tasksets"] for p in points] == [50, 50, 50]
    # Low utilisation: everything accepted; high: HYDRA strictly ahead.
    assert points[0]["accepted_hydra"] == points[0]["accepted_single"] == 50
    assert points[-1]["accepted_hydra"] >= points[-1]["accepted_single"]

    fig1 = _fixture("fig1_mini")
    (panel,) = fig1["points"]
    assert panel["cores"] == 2
    assert len(panel["hydra_times"]) == len(panel["single_times"]) == 20
