"""Golden-regression tests: fixed-seed curves pinned as checked-in JSON.

Each fixture stores both human-reviewable aggregates (acceptance
counts, detection times) and a sha256 over the full per-point payloads.
The sweep engine must reproduce them *exactly* — in serial mode, in
parallel mode, and through a cache round-trip.  If one of these tests
fails after an intended behaviour change, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated fixtures with the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.golden import golden_fixtures, golden_summary
from repro.experiments.parallel import SweepEngine
from repro.experiments.pool import WorkerPool
from repro.experiments.store import ResultStore, write_v1_entry

GOLDEN_DIR = Path(__file__).parent / "golden"

_NAMES = sorted(golden_fixtures())


def _fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"'PYTHONPATH=src python tools/regen_golden.py'"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", _NAMES)
def test_serial_engine_reproduces_fixture(name):
    assert golden_summary(name, SweepEngine(workers=1)) == _fixture(name)


@pytest.mark.parametrize("name", _NAMES)
def test_parallel_engine_reproduces_fixture(name):
    assert golden_summary(name, SweepEngine(workers=4)) == _fixture(name)


def test_cached_rerun_reproduces_fixture(tmp_path):
    name = "fig2_mini"
    cache = ResultCache(tmp_path)
    cold = golden_summary(name, SweepEngine(cache=cache))
    assert cold == _fixture(name)

    computed: list[int] = []
    warm_engine = SweepEngine(
        cache=ResultCache(tmp_path), on_point_computed=computed.append
    )
    assert golden_summary(name, warm_engine) == _fixture(name)
    assert computed == []  # second run came entirely from the cache


def test_shared_persistent_pool_reproduces_fixture():
    """One injected pool across several fixtures: reuse (a single
    spawn) must not disturb a single byte."""
    with WorkerPool(2) as pool:
        engine = SweepEngine(pool=pool)
        for name in _NAMES:
            assert golden_summary(name, engine) == _fixture(name)
        # fig2/fig3 minis are multi-point, so the pool really was used —
        # and exactly one spawn served every fixture.
        assert pool.spawn_count == 1


def test_subprocess_executor_reproduces_fixture():
    """The fault-tolerant subprocess backend is payload-identical to
    the serial reference on a pinned fixture (multi-point, so the
    NDJSON workers really carry the batch)."""
    from repro.executors import SubprocessExecutor

    name = "fig2_mini"
    with SubprocessExecutor(workers=2) as executor:
        engine = SweepEngine(executor=executor)
        assert golden_summary(name, engine) == _fixture(name)


def test_v1_migrated_cache_reproduces_fixture(tmp_path):
    """A PR-1-era JSON-per-point cache directory, migrated on open,
    must serve a warm run byte-identically with zero recomputes."""
    name = "fig2_mini"
    spec = golden_fixtures()[name].build_spec()
    cold = SweepEngine().run(spec)
    for index, payload in enumerate(cold.payloads):
        write_v1_entry(
            tmp_path, spec.kind, spec.key_payload(index), payload
        )

    store = ResultStore(tmp_path)  # one-shot migration happens here
    assert store.pending_v1_entries() == 0
    computed: list[int] = []
    engine = SweepEngine(cache=store, on_point_computed=computed.append)
    assert golden_summary(name, engine) == _fixture(name)
    assert computed == []  # every point came from the migrated store


def test_fixture_files_match_registry():
    """Every registry-declared fixture is pinned on disk, and nothing
    stale lingers after an experiment stops declaring one."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(_NAMES)


def test_fig3_and_table1_fixture_sanity():
    fig3 = _fixture("fig3_mini")
    assert fig3["kind"] == "fig3-gap"
    assert len(fig3["points"]) == 3
    for point in fig3["points"]:
        assert all(0.0 <= g <= 100.0 for g in point["gaps"])
        assert point["hydra_failures"] <= len(point["gaps"])

    table1 = _fixture("table1_mini")
    assert table1["kind"] == "table1"
    rows = table1["points"]
    assert len(rows) == 6
    for row in rows:
        assert row["period_des"] <= row["hydra_period"] <= row["period_max"]


def test_fixture_sanity():
    """The pinned curve itself shows the paper's qualitative shape."""
    fig2 = _fixture("fig2_mini")
    points = fig2["points"]
    assert [p["tasksets"] for p in points] == [50, 50, 50]
    # Low utilisation: everything accepted; high: HYDRA strictly ahead.
    assert points[0]["accepted_hydra"] == points[0]["accepted_single"] == 50
    assert points[-1]["accepted_hydra"] >= points[-1]["accepted_single"]

    fig1 = _fixture("fig1_mini")
    (panel,) = fig1["points"]
    assert panel["cores"] == 2
    assert len(panel["hydra_times"]) == len(panel["single_times"]) == 20
