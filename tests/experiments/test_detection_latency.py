"""The detection-latency experiment family.

Parsing/validation of ``kind = "detection-latency"`` scenarios, the
experiment-factory dispatch, engine determinism (serial ≡ parallel ≡
cached), result round-tripping with no bare ``inf`` in rendered
output, and the Fig. 1 censoring regression (undetected attacks near
the horizon are *censored*, not evidence of undetectability).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments import ExperimentResult
from repro.experiments.cache import ResultCache
from repro.experiments.config import SCALES
from repro.experiments.detection import (
    DetectionLatencyExperiment,
    DetectionScenarioExperiment,
    monitoring_view,
)
from repro.experiments.parallel import SweepEngine
from repro.experiments.scenario import (
    ScenarioExperiment,
    build_scenario_experiment,
    combo_label,
    parse_scenario,
)

SMOKE = SCALES["smoke"]


def _detection_document() -> dict:
    return {
        "sweep": {
            "name": "det-mini",
            "kind": "detection-latency",
            "tasksets_per_point": 2,
            "sim_trials": 4,
            "sim_duration": 3000.0,
            "utilization": {"start": 0.4, "stop": 0.6, "step": 0.2},
        },
        "grid": {
            "cores": [2],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
            "allocator": ["hydra", "adaptive[exact-rta]"],
            "policy": ["release-after", "start-after"],
        },
    }


class TestParsing:
    def test_happy_path(self):
        config = parse_scenario(_detection_document())
        assert config.kind == "detection-latency"
        assert config.policy_axis
        assert config.policies == ("release-after", "start-after")
        assert config.sim_trials == 4
        assert config.sim_duration == 3000.0
        # allocators × policies expand the combo grid
        assert len(config.combos) == 2 * 2
        assert config.combos[0]["policy"] == "release-after"

    def test_policy_axis_requires_detection_kind(self):
        document = _detection_document()
        del document["sweep"]["kind"]
        del document["sweep"]["sim_trials"]
        del document["sweep"]["sim_duration"]
        with pytest.raises(ValidationError, match="policy axis requires"):
            parse_scenario(document)

    def test_sim_knobs_require_detection_kind(self):
        document = _detection_document()
        document["sweep"]["kind"] = "acceptance"
        del document["grid"]["policy"]
        with pytest.raises(ValidationError, match="sim_trials"):
            parse_scenario(document)

    def test_unknown_kind_rejected(self):
        document = _detection_document()
        document["sweep"]["kind"] = "detection"
        with pytest.raises(ValidationError, match="kind must be one of"):
            parse_scenario(document)

    def test_unknown_policy_rejected(self):
        document = _detection_document()
        document["grid"]["policy"] = ["release-after", "after-lunch"]
        with pytest.raises(ValidationError, match="policy"):
            parse_scenario(document)

    def test_combo_label_policy_suffix(self):
        assert combo_label(
            "best-fit", "utilization", "rta",
            allocator="hydra", policy="start-after",
        ) == "hydra|best-fit/utilization/rta@start-after"
        # no axis → no suffix: pre-existing cache labels stay valid
        assert combo_label("best-fit", "rm", "rta") == "best-fit/rm/rta"


class TestFactory:
    def test_dispatch_by_kind(self):
        detection = build_scenario_experiment(
            parse_scenario(_detection_document())
        )
        assert isinstance(detection, DetectionScenarioExperiment)
        acceptance_doc = {
            "sweep": {"name": "acc"},
            "grid": {
                "cores": [2], "heuristic": ["best-fit"],
                "ordering": ["rm"], "admission": ["rta"],
            },
        }
        acceptance = build_scenario_experiment(
            parse_scenario(acceptance_doc)
        )
        assert isinstance(acceptance, ScenarioExperiment)
        assert not isinstance(acceptance, DetectionScenarioExperiment)

    def test_scenario_experiment_refuses_detection_config(self):
        config = parse_scenario(_detection_document())
        with pytest.raises(ValidationError,
                           match="build_scenario_experiment"):
            ScenarioExperiment(config)

    def test_registered_experiment_defaults(self):
        experiment = DetectionLatencyExperiment()
        assert experiment.name == "detection-latency"
        (spec,) = experiment.sweeps(
            SMOKE.with_overrides(core_counts=(2,))
        )
        assert spec.kind == "detection-latency"
        assert spec.params["cores"] == 2
        # empty cores axis inherits the scale preset
        assert experiment.config.cores == ()


class TestDeterminism:
    def test_serial_parallel_cached_byte_identical(self, tmp_path):
        experiment = build_scenario_experiment(
            parse_scenario(_detection_document())
        )
        (spec,) = experiment.sweeps(SMOKE)

        serial = SweepEngine(workers=1).run(spec)
        parallel = SweepEngine(workers=4).run(spec)
        assert (
            json.dumps(serial.payloads, sort_keys=True)
            == json.dumps(parallel.payloads, sort_keys=True)
        )

        cache = ResultCache(tmp_path)
        cold = SweepEngine(cache=cache).run(spec)
        assert cold.payloads == serial.payloads
        computed: list[int] = []
        warm = SweepEngine(
            cache=ResultCache(tmp_path), on_point_computed=computed.append
        ).run(spec)
        assert warm.payloads == serial.payloads
        assert computed == []  # warm run came entirely from the cache

    def test_payloads_are_json_finite(self):
        """No bare inf/nan anywhere in the sweep payloads: undetected
        attacks travel as explicit censored/undetectable counts."""
        experiment = build_scenario_experiment(
            parse_scenario(_detection_document())
        )
        (spec,) = experiment.sweeps(SMOKE)
        result = SweepEngine().run(spec)
        text = json.dumps(result.payloads, allow_nan=False)
        assert "Infinity" not in text


class TestResult:
    @pytest.fixture(scope="class")
    def run_result(self):
        experiment = build_scenario_experiment(
            parse_scenario(_detection_document())
        )
        return experiment, experiment.run(SMOKE)

    def test_round_trip(self, run_result):
        experiment, result = run_result
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded == result
        domain = experiment.decode_data(loaded.data)
        assert domain.name == "det-mini"
        (panel,) = domain.panels
        labels = {cell.scheme for cell in panel.cells}
        assert labels == {
            combo_label(**combo) for combo in experiment.config.combos
        }
        for cell in panel.cells:
            assert cell.detected + cell.censored + cell.undetectable == (
                cell.attacks
            )
            assert all(math.isfinite(t) for t in cell.times)

    def test_render_has_no_bare_inf(self, run_result):
        experiment, result = run_result
        text = experiment.render(result)
        assert "inf" not in text
        assert "censored" in text
        assert "@release-after" in text and "@start-after" in text

    def test_table_rows_use_none_not_inf(self, run_result):
        experiment, result = run_result
        rows = experiment.table_rows(experiment.decode_data(result.data))
        for row in rows:
            for value in row:
                if isinstance(value, float):
                    assert math.isfinite(value)


class TestMonitoringView:
    def test_unlabelled_tasks_monitor_themselves(self):
        from repro.model.task import SecurityTask, TaskSet

        tasks = TaskSet(
            [
                SecurityTask(name="tagged", wcet=1.0, period_des=50.0,
                             period_max=500.0, surface="filesystem"),
                SecurityTask(name="plain", wcet=1.0, period_des=60.0,
                             period_max=600.0),
            ]
        )
        view = monitoring_view(tasks)
        surfaces = {t.name: t.surface for t in view}
        assert surfaces == {"tagged": "filesystem", "plain": "plain"}


class TestFig1Censoring:
    """Regression: an attack the horizon cuts off is *censored*, not
    counted as undetectable — the bias satellite of this PR."""

    def test_observe_detections_accounts_for_every_attack(self):
        from repro.experiments.fig1 import (
            build_uav_systems,
            observe_detections,
        )

        system, allocation, _, _ = build_uav_systems(2)
        times, censored, undetectable = observe_detections(
            system, allocation,
            sim_duration=4_000.0, sim_trials=40,
            rng=np.random.default_rng(7),
        )
        detected = sum(1 for t in times if math.isfinite(t))
        assert detected + censored + undetectable == 40
        # Every Table I surface is monitored, so nothing is undetectable.
        assert undetectable == 0

    def test_horizon_cutoff_is_censored_not_undetectable(self):
        """An attack on a monitored surface just before the horizon has
        no fresh completion left — it must land in the censored count."""
        from repro.sim.detection import (
            build_surface_map,
            detection_times,
            undetected_breakdown,
        )
        from repro.sim.attacks import Attack
        from repro.sim.engine import SimResult
        from repro.sim.events import JobRecord
        from repro.model.task import SecurityTask, TaskSet

        tasks = TaskSet([
            SecurityTask(name="mon", wcet=1.0, period_des=50.0,
                         period_max=500.0, surface="bus"),
        ])
        jobs = [
            JobRecord(task="mon", release=0.0, deadline=50.0,
                      start=0.0, completion=1.0, core=0),
        ]
        result = SimResult(duration=100.0, jobs=jobs, misses=[],
                           busy_time={})
        attacks = [
            Attack(time=99.0, surface="bus"),    # censored by horizon
            Attack(time=10.0, surface="ghost"),  # no monitor at all
        ]
        times = detection_times(result, attacks, tasks)
        surface_map = build_surface_map(tasks)
        assert undetected_breakdown(times, attacks, surface_map) == (1, 1)

    def test_fig1_result_reports_censored_separately(self):
        from repro.experiments.fig1 import Fig1SchemeResult

        scheme = Fig1SchemeResult(
            scheme="hydra",
            times=(5.0, 7.0, math.inf, math.inf, math.inf),
            censored=2,
        )
        assert scheme.censored == 2
        assert scheme.undetectable == 1
        assert scheme.cdf.undetected == 3
