"""Property tests: designer-advice hints must be sufficient remedies.

Whenever :func:`repro.core.advice.diagnose` proposes a remedy on a
random unschedulable system, *applying* that remedy (via the transform
utilities) must produce a schedulable system — otherwise the advice is
noise.  The stretch-T_max and add-core hints are checked exactly;
``max_security_scale`` must sit on the feasibility boundary.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advice import diagnose, max_security_scale
from repro.core.hydra import HydraAllocator
from repro.experiments.runner import build_hydra_system
from repro.model.transform import (
    scale_security_wcets,
    with_extra_cores,
    with_period_max,
)
from repro.taskgen.synthetic import SyntheticConfig, generate_workload


def _random_system(seed: int, utilization: float):
    config = SyntheticConfig(
        security_task_count=(2, 5),
        # Tighter T_max than the paper default so unschedulable systems
        # actually occur inside the sweep.
        period_max_factor=2.0,
    )
    workload = generate_workload(
        2, utilization, np.random.default_rng(seed), config
    )
    return build_hydra_system(workload)


class TestAdviceSufficiency:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=1.2, max_value=1.95),
    )
    def test_stretch_hint_fixes_failed_task(self, seed, utilization):
        system = _random_system(seed, utilization)
        if system is None:
            return
        report = diagnose(system)
        if report.schedulable:
            return
        stretch = next(
            (h for h in report.hints if h.kind == "stretch-period-max"),
            None,
        )
        if stretch is None:
            return
        fixed = with_period_max(
            system, stretch.task, stretch.required * (1 + 1e-9)
        )
        fixed_report = diagnose(fixed)
        # Either the whole system is now fine or the failure moved to a
        # *different* (lower-priority) task — the hinted task itself is
        # repaired.
        assert (
            fixed_report.schedulable
            or fixed_report.failed_task != stretch.task
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=1.2, max_value=1.95),
    )
    def test_add_core_hint_is_truthful(self, seed, utilization):
        system = _random_system(seed, utilization)
        if system is None:
            return
        report = diagnose(system)
        if report.schedulable:
            return
        offered = any(h.kind == "add-core" for h in report.hints)
        actually_works = HydraAllocator().allocate(
            with_extra_cores(system)
        ).schedulable
        assert offered == actually_works

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=0.5, max_value=1.8),
    )
    def test_max_scale_sits_on_feasibility_boundary(
        self, seed, utilization
    ):
        system = _random_system(seed, utilization)
        if system is None:
            return
        scale = max_security_scale(system, tolerance=1e-3, upper=8.0)
        allocator = HydraAllocator()
        if scale == 0.0:
            return  # hopeless system: nothing to check below zero
        if scale < 8.0:
            # Slightly above must fail (boundary from above)...
            try:
                above = scale_security_wcets(system, scale + 5e-3)
            except Exception:
                above = None
            if above is not None:
                assert not allocator.allocate(above).schedulable
        # ...and slightly below must succeed.
        below = scale_security_wcets(system, max(scale - 5e-3, 1e-4))
        assert allocator.allocate(below).schedulable
