"""Fault injection against the ``subprocess-workers`` backend.

The point runner below is generated into a temp directory and imported
both in this process (so serial reference runs can execute it) and in
the worker subprocesses (via ``preload=`` + ``PYTHONPATH``).  Faults
are armed through sweep ``params``; every attempt is recorded in a
marker file, so "fail exactly once, then succeed" scenarios survive
worker respawns and the tests can assert how many attempts really
happened.  Payloads depend only on ``(index, rng)`` — never on the
fault knobs — so fault-injected runs must stay byte-identical to the
serial reference.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.errors import ExecutorError, ExecutorTaskError, ValidationError
from repro.executors import SubprocessExecutor
from repro.experiments.parallel import SweepEngine, SweepSpec, execute_point
from repro.experiments.store import ResultStore

_RUNNER_SOURCE = '''\
"""Fault-injectable point runner for executor tests (generated)."""

import os
import signal
import time
from pathlib import Path

from repro.experiments.parallel import register_point_runner


def _attempt_number(markers, tag):
    """Record this attempt; return how many have happened (1-based)."""
    path = Path(markers) / tag
    with path.open("a") as handle:
        handle.write(f"{os.getpid()}\\n")
    with path.open() as handle:
        return sum(1 for _ in handle)


@register_point_runner("exec-test")
def run_exec_test_point(point, params, rng):
    index = int(point["index"])
    mode = params.get("mode")
    if mode and index == int(params.get("target", 1)):
        attempt = _attempt_number(params["markers"], f"{mode}-{index}")
        if mode == "kill" and attempt == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "sleep-once" and attempt == 1:
            time.sleep(120.0)
        elif mode == "sleep-always":
            time.sleep(120.0)
        elif mode == "raise":
            raise ValueError("injected fault")
    # The payload never depends on the fault knobs above: armed and
    # unarmed runs of one index are byte-identical by construction.
    return {"index": index, "value": float(rng.random())}
'''


@pytest.fixture(scope="session")
def runner_module(tmp_path_factory) -> str:
    """Write the runner module once per session and import it here, so
    the parent process can run the serial reference; workers import it
    via ``preload``."""
    directory = tmp_path_factory.mktemp("exec_runners")
    (directory / "exec_test_runner.py").write_text(_RUNNER_SOURCE)
    sys.path.insert(0, str(directory))
    import exec_test_runner  # noqa: F401  (registers "exec-test")

    return str(directory)


def _make_executor(runner_module: str, workers: int, **kwargs):
    kwargs.setdefault("retry_backoff", 0.01)
    return SubprocessExecutor(
        workers=workers,
        preload=("exec_test_runner",),
        env={"PYTHONPATH": runner_module},
        **kwargs,
    )


def _spec(
    markers: Path, mode: str | None = None, target: int = 1, n: int = 6
) -> SweepSpec:
    params: dict = {"markers": str(markers)}
    if mode:
        params.update(mode=mode, target=target)
    return SweepSpec(
        kind="exec-test",
        seed=4242,
        points=tuple({"index": i} for i in range(n)),
        params=params,
    )


def _serial_reference(markers: Path, n: int = 6) -> list[tuple[int, dict]]:
    spec = _spec(markers, mode=None, n=n)
    return [(i, execute_point(spec, i)) for i in range(n)]


def _attempts(markers: Path, tag: str) -> int:
    path = markers / tag
    return len(path.read_text().splitlines()) if path.exists() else 0


class TestHappyPath:
    def test_matches_serial_bytes(self, runner_module, tmp_path):
        spec = _spec(tmp_path)
        with _make_executor(runner_module, workers=2) as executor:
            got = executor.run_points(spec, list(range(6)))
        assert got == _serial_reference(tmp_path)

    def test_workers_persist_across_sweeps(self, runner_module, tmp_path):
        with _make_executor(runner_module, workers=2) as executor:
            executor.run_points(_spec(tmp_path), [0, 1, 2])
            first_pids = set(executor.worker_pids())
            executor.run_points(_spec(tmp_path), [3, 4, 5])
            assert set(executor.worker_pids()) == first_pids
            assert executor.spawn_count == 2  # no respawns happened

    def test_close_is_idempotent_and_executor_restartable(
        self, runner_module, tmp_path
    ):
        executor = _make_executor(runner_module, workers=1)
        executor.run_points(_spec(tmp_path), [0])
        executor.close()
        executor.close()
        assert not executor.active
        # A closed executor lazily respawns, like WorkerPool.
        got = executor.run_points(_spec(tmp_path), [1])
        assert got == [_serial_reference(tmp_path)[1]]
        executor.close()


class TestWorkerDeath:
    def test_sigkilled_worker_is_respawned_and_results_match_serial(
        self, runner_module, tmp_path
    ):
        spec = _spec(tmp_path, mode="kill", target=1)
        with _make_executor(runner_module, workers=2) as executor:
            got = executor.run_points(spec, list(range(6)))
            assert executor.spawn_count > 2  # a respawn really happened
        assert _attempts(tmp_path, "kill-1") == 2  # died once, retried once
        assert got == _serial_reference(tmp_path)

    def test_fault_injected_sweep_writes_no_duplicate_store_entries(
        self, runner_module, tmp_path
    ):
        spec = _spec(tmp_path / "markers", mode="kill", target=2)
        (tmp_path / "markers").mkdir()
        store = ResultStore(tmp_path / "cache")
        with _make_executor(runner_module, workers=2) as executor:
            engine = SweepEngine(executor=executor, cache=store)
            result = engine.run(spec)
        assert result.stats.computed_points == 6
        assert len(store) == 6  # one entry per point, despite the retry

        # A warm rerun serves everything from the store: retries never
        # re-persisted a point, and nothing recomputes.
        computed: list[int] = []
        warm = SweepEngine(
            cache=ResultStore(tmp_path / "cache"),
            on_point_computed=computed.append,
        ).run(spec)
        assert computed == []
        assert warm.payloads == result.payloads


class TestTimeouts:
    def test_task_timeout_retries_once_then_succeeds(
        self, runner_module, tmp_path
    ):
        spec = _spec(tmp_path, mode="sleep-once", target=1, n=3)
        with _make_executor(
            runner_module, workers=1, task_timeout=0.5
        ) as executor:
            got = executor.run_points(spec, list(range(3)))
        assert _attempts(tmp_path, "sleep-once-1") == 2
        assert got == _serial_reference(tmp_path, n=3)

    def test_exhausted_retries_raise_a_typed_executor_error(
        self, runner_module, tmp_path
    ):
        spec = _spec(tmp_path, mode="sleep-always", target=1, n=2)
        with _make_executor(
            runner_module, workers=1, task_timeout=0.3, max_task_retries=1
        ) as executor:
            with pytest.raises(ExecutorError, match="after 2 attempts"):
                executor.run_points(spec, list(range(2)))
        assert _attempts(tmp_path, "sleep-always-1") == 2


class TestTaskErrors:
    def test_runner_exception_is_not_retried(self, runner_module, tmp_path):
        spec = _spec(tmp_path, mode="raise", target=1, n=3)
        with _make_executor(runner_module, workers=1) as executor:
            with pytest.raises(ExecutorTaskError, match="ValueError") as info:
                executor.run_points(spec, list(range(3)))
        assert info.value.error_type == "ValueError"
        # Deterministic points fail deterministically: exactly one
        # attempt, no respawn-and-retry loop.
        assert _attempts(tmp_path, "raise-1") == 1

    def test_task_error_is_an_executor_error_too(self):
        assert issubclass(ExecutorTaskError, ExecutorError)


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValidationError, match="worker"):
            SubprocessExecutor(workers=0)

    def test_rejects_heartbeat_timeout_below_interval(self):
        with pytest.raises(ValidationError, match="heartbeat"):
            SubprocessExecutor(
                workers=1, heartbeat_interval=2.0, heartbeat_timeout=1.0
            )

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(ValidationError, match="max_task_retries"):
            SubprocessExecutor(workers=1, max_task_retries=-1)
