"""Executor registry: lookup, typed errors, plugin hygiene."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.executors import (
    Executor,
    SerialExecutor,
    UnknownExecutorError,
    executor_names,
    get_executor,
    get_executor_info,
    iter_executor_info,
    register_executor,
    unregister_executor,
)


class TestBuiltins:
    def test_builtins_register_in_order(self):
        names = executor_names()
        assert names[:3] == ["serial", "pool", "subprocess-workers"]

    def test_info_carries_title_description_tags(self):
        for info in iter_executor_info():
            assert info.name
            assert info.title
            assert isinstance(info.tags, tuple)
        subproc = get_executor_info("subprocess-workers")
        assert "fault-tolerant" in subproc.tags
        assert "heartbeat" in subproc.description.lower()

    def test_get_executor_builds_ready_instances(self):
        serial = get_executor("serial")
        assert isinstance(serial, Executor)
        assert serial.name == "serial"
        assert serial.workers == 1

        pool = get_executor("pool", workers=3)
        assert pool.name == "pool"
        assert pool.workers == 3

        subproc = get_executor("subprocess-workers", workers=2)
        try:
            assert subproc.name == "subprocess-workers"
            assert subproc.workers == 2
            assert not subproc.active  # lazy: nothing spawned yet
        finally:
            subproc.close()

    def test_unknown_executor_is_a_typed_error_naming_knowns(self):
        with pytest.raises(UnknownExecutorError, match="serial"):
            get_executor_info("warp-drive")
        # The CLI and job service catch ConfigError for exit-1 handling.
        assert issubclass(UnknownExecutorError, ConfigError)


class TestPluginHygiene:
    def test_register_and_unregister_a_custom_backend(self):
        try:

            @register_executor(
                "unit-test-backend",
                title="registry test double",
                tags=("test",),
            )
            def make_test_backend(workers=None):
                return SerialExecutor()

            assert "unit-test-backend" in executor_names()
            assert isinstance(get_executor("unit-test-backend"), Executor)
        finally:
            unregister_executor("unit-test-backend")
        assert "unit-test-backend" not in executor_names()

    def test_duplicate_name_requires_replace(self):
        with pytest.raises(ConfigError, match="already registered"):

            @register_executor("serial")
            def clobber(workers=None):  # pragma: no cover - never called
                return SerialExecutor()

        # Explicit replace is allowed (and reversible).
        original = get_executor_info("serial")
        try:

            @register_executor("serial", title="override", replace=True)
            def override(workers=None):
                return SerialExecutor()

            assert get_executor_info("serial").title == "override"
        finally:
            unregister_executor("serial")
            register_executor(
                "serial",
                title=original.title,
                description=original.description,
                tags=original.tags,
            )(original.factory)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):

            @register_executor("")
            def nameless(workers=None):  # pragma: no cover - never called
                return SerialExecutor()

    def test_factory_must_return_an_executor(self):
        try:

            @register_executor("broken-backend")
            def make_broken(workers=None):
                return "not an executor"

            with pytest.raises(ConfigError, match="not an Executor"):
                get_executor("broken-backend")
        finally:
            unregister_executor("broken-backend")
