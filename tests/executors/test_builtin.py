"""Serial and pool executors: byte-identity and pool etiquette."""

from __future__ import annotations

import pytest

from repro.executors import PoolExecutor, SerialExecutor, get_executor
from repro.experiments.parallel import SweepEngine, SweepSpec, execute_point
from repro.experiments.pool import WorkerPool


def _spec(n: int = 6, seed: int = 2024) -> SweepSpec:
    return SweepSpec(
        kind="calibration",
        seed=seed,
        points=tuple({"i": i} for i in range(n)),
    )


def _reference(spec: SweepSpec) -> list[tuple[int, dict]]:
    return [(i, execute_point(spec, i)) for i in range(len(spec.points))]


class TestSerialExecutor:
    def test_matches_in_process_execution(self):
        spec = _spec()
        indices = list(range(len(spec.points)))
        assert SerialExecutor().run_points(spec, indices) == _reference(spec)

    def test_subset_and_order_are_honoured(self):
        spec = _spec()
        got = SerialExecutor().run_points(spec, [4, 1])
        assert [index for index, _ in got] == [4, 1]
        assert got[0][1] == execute_point(spec, 4)

    def test_empty_batch(self):
        assert SerialExecutor().run_points(_spec(), []) == []

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.workers == 1


class TestPoolExecutor:
    def test_matches_serial_bytes(self):
        spec = _spec()
        indices = list(range(len(spec.points)))
        with WorkerPool(2) as pool:
            executor = PoolExecutor(pool=pool)
            assert executor.run_points(spec, indices) == _reference(spec)
            assert pool.spawn_count == 1

    def test_single_point_batch_stays_in_process(self):
        with WorkerPool(2) as pool:
            executor = PoolExecutor(pool=pool)
            executor.run_points(_spec(), [2])
            assert pool.spawn_count == 0  # serial shortcut: no fork

    def test_injected_pool_is_not_shut_down(self):
        with WorkerPool(2) as pool:
            executor = PoolExecutor(pool=pool)
            executor.run_points(_spec(), [0, 1, 2])
            executor.close()
            assert pool.active  # creator owns the pool's lifecycle


class TestEngineIntegration:
    def test_engine_accepts_registry_names(self):
        spec = _spec()
        baseline = SweepEngine(workers=1).run(spec)
        named = SweepEngine(executor="serial").run(spec)
        assert named.payloads == baseline.payloads

    def test_engine_accepts_instances_and_defaults_workers(self):
        with WorkerPool(2) as pool:
            executor = PoolExecutor(pool=pool)
            engine = SweepEngine(executor=executor)
            assert engine.workers == executor.workers
            assert engine.run(_spec()).payloads == (
                SweepEngine(workers=1).run(_spec()).payloads
            )

    def test_engine_rejects_unknown_executor_names(self):
        from repro.executors import UnknownExecutorError

        with pytest.raises(UnknownExecutorError):
            SweepEngine(executor="warp-drive")

    def test_get_executor_workers_flow_through(self):
        executor = get_executor("pool", workers=2)
        assert executor.workers == 2
        # Nonsense counts clamp to serial instead of erroring — the
        # same forgiving convention as WorkerPool/engine worker counts.
        assert PoolExecutor(workers=-1).workers == 1
