"""Unit tests for the bin-packing partitioning heuristics."""

from __future__ import annotations

import pytest

from repro.analysis.schedulability import partition_schedulable
from repro.errors import PartitioningError
from repro.model.platform import Platform
from repro.model.task import RealTimeTask
from repro.partition.heuristics import partition_tasks, try_partition_tasks


def rt(name: str, util: float, period: float = 100.0) -> RealTimeTask:
    return RealTimeTask(name=name, wcet=util * period, period=period)


class TestPlacementRules:
    def test_best_fit_packs_tightest_core(self):
        # Seed two cores unevenly, then watch where the next task goes.
        tasks = [rt("big", 0.6), rt("small", 0.3), rt("probe", 0.2)]
        partition = try_partition_tasks(
            tasks, Platform(2), heuristic="best-fit", admission="utilization"
        )
        assert partition is not None
        # Decreasing utilisation: big→0, small→(best = most loaded that
        # fits: core 0 at .6 fits .3) → 0; probe → core 0 (at .9 fits .2?
        # no, .9 + .2 > 1 → core 1).
        assert partition.core_of("big") == 0
        assert partition.core_of("small") == 0
        assert partition.core_of("probe") == 1

    def test_worst_fit_spreads_load(self):
        tasks = [rt("a", 0.6), rt("b", 0.3), rt("c", 0.2)]
        partition = try_partition_tasks(
            tasks, Platform(2), heuristic="worst-fit", admission="utilization"
        )
        assert partition is not None
        assert partition.core_of("a") == 0
        assert partition.core_of("b") == 1  # emptier core
        assert partition.core_of("c") == 1  # 0.3 < 0.6 → still emptier

    def test_first_fit_prefers_low_index(self):
        tasks = [rt("a", 0.4), rt("b", 0.4), rt("c", 0.4)]
        partition = try_partition_tasks(
            tasks, Platform(3), heuristic="first-fit", admission="utilization"
        )
        assert partition is not None
        assert partition.core_of("a") == 0
        assert partition.core_of("b") == 0
        assert partition.core_of("c") == 1  # 1.2 > 1 on core 0

    def test_next_fit_never_revisits(self):
        tasks = [rt("a", 0.7), rt("b", 0.7), rt("c", 0.2)]
        partition = try_partition_tasks(
            tasks, Platform(3), heuristic="next-fit", admission="utilization"
        )
        assert partition is not None
        # a→0; b doesn't fit 0 → 1; c fits 1 (pointer stays) → 1.
        assert partition.core_of("a") == 0
        assert partition.core_of("b") == 1
        assert partition.core_of("c") == 1

    def test_next_fit_can_fail_where_first_fit_succeeds(self):
        # Input order a, b, c: after b moves the pointer to core 1,
        # next-fit cannot return to core 0 where c would still fit.
        tasks = [rt("a", 0.55), rt("b", 0.75), rt("c", 0.4)]
        next_fit = try_partition_tasks(
            tasks, Platform(2), heuristic="next-fit",
            admission="utilization", ordering="input",
        )
        first_fit = try_partition_tasks(
            tasks, Platform(2), heuristic="first-fit",
            admission="utilization", ordering="input",
        )
        assert next_fit is None
        assert first_fit is not None
        assert first_fit.core_of("c") == 0


class TestOrderings:
    def test_input_order_respected(self):
        tasks = [rt("small", 0.2), rt("big", 0.9)]
        partition = try_partition_tasks(
            tasks,
            Platform(2),
            heuristic="first-fit",
            admission="utilization",
            ordering="input",
        )
        assert partition is not None
        assert partition.core_of("small") == 0

    def test_rm_ordering_places_short_periods_first(self):
        tasks = [
            rt("slow", 0.5, period=1000.0),
            rt("fast", 0.5, period=10.0),
        ]
        partition = try_partition_tasks(
            tasks,
            Platform(2),
            heuristic="first-fit",
            admission="utilization",
            ordering="rm",
        )
        assert partition is not None
        assert partition.core_of("fast") == 0

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            try_partition_tasks(
                [rt("a", 0.1)], Platform(1), ordering="random"
            )

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            try_partition_tasks([rt("a", 0.1)], Platform(1),
                                heuristic="magic")


class TestAdmission:
    def test_rta_admission_produces_schedulable_partition(self, rng):
        from repro.taskgen.synthetic import generate_workload

        for _ in range(5):
            wl = generate_workload(4, 3.0, rng)
            partition = try_partition_tasks(wl.rt_tasks, wl.platform)
            if partition is not None:
                assert partition_schedulable(partition)

    def test_rta_accepts_more_than_liu_layland(self):
        # Harmonic set with U = 1 per core: RTA packs it, LL cannot.
        tasks = [rt("a", 0.5, 4.0), rt("b", 0.5, 8.0)]
        rta_partition = try_partition_tasks(
            tasks, Platform(1), admission="rta"
        )
        ll_partition = try_partition_tasks(
            tasks, Platform(1), admission="liu-layland"
        )
        assert rta_partition is not None
        assert ll_partition is None

    def test_callable_admission(self):
        calls = []

        def noisy(tasks):
            calls.append(len(tasks))
            return True

        partition = try_partition_tasks(
            [rt("a", 0.5), rt("b", 0.5)], Platform(1), admission=noisy
        )
        assert partition is not None
        assert calls  # the callable was actually consulted


class TestFailureModes:
    def test_returns_none_when_oversubscribed(self):
        tasks = [rt("a", 0.9), rt("b", 0.9), rt("c", 0.9)]
        assert try_partition_tasks(tasks, Platform(2)) is None

    def test_partition_tasks_raises(self):
        tasks = [rt("a", 0.9), rt("b", 0.9), rt("c", 0.9)]
        with pytest.raises(PartitioningError):
            partition_tasks(tasks, Platform(2))

    def test_empty_taskset(self):
        partition = try_partition_tasks([], Platform(2))
        assert partition is not None
        assert partition.utilizations() == [0.0, 0.0]

    def test_all_tasks_assigned_exactly_once(self, rng):
        from repro.taskgen.synthetic import generate_workload

        wl = generate_workload(4, 2.0, rng)
        partition = try_partition_tasks(wl.rt_tasks, wl.platform)
        assert partition is not None
        assigned = [
            t.name for m in wl.platform for t in partition.tasks_on(m)
        ]
        assert sorted(assigned) == sorted(wl.rt_tasks.names)
