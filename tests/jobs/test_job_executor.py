"""Executor selection through JobRequest/JobRunner, and typed failures."""

from __future__ import annotations

import pytest

from repro.errors import ExecutorError, ValidationError
from repro.executors import Executor, UnknownExecutorError
from repro.jobs import JobRequest, JobRunner, JobState, derive_job_id

MINI_SPEC = {
    "sweep": {
        "name": "jobs-exec-mini",
        "tasksets_per_point": 2,
        "utilization": {"start": 0.5, "stop": 1.0, "step": 0.5},
    },
    "grid": {
        "cores": [2],
        "heuristic": ["best-fit"],
        "ordering": ["rm"],
        "admission": ["rta"],
    },
}


def mini_request(**overrides) -> JobRequest:
    merged = {"spec": MINI_SPEC, "scale": "smoke", **overrides}
    return JobRequest.from_dict(merged)


class _Explosive(Executor):
    """An executor whose workers 'keep dying': raises a typed error."""

    name = "explosive"

    def run_points(self, spec, indices):
        raise ExecutorError("injected worker meltdown")


class TestJobRequestExecutor:
    def test_executor_key_round_trips(self):
        request = mini_request(executor="serial")
        assert request.executor == "serial"
        assert request.to_dict()["executor"] == "serial"
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_executor_key_is_optional_and_omitted_when_unset(self):
        request = mini_request()
        assert request.executor is None
        assert "executor" not in request.to_dict()

    def test_executor_must_be_a_string(self):
        with pytest.raises(ValidationError, match="executor"):
            JobRequest.from_dict(
                {"spec": MINI_SPEC, "scale": "smoke", "executor": 3}
            )

    def test_unknown_executor_is_a_typed_error_at_build(self):
        with pytest.raises(UnknownExecutorError, match="warp-drive"):
            mini_request(executor="warp-drive").build()

    def test_executor_never_changes_the_job_id(self):
        plain = derive_job_id(*mini_request().build())
        named = derive_job_id(*mini_request(executor="serial").build())
        assert named == plain  # an execution knob, like worker counts


class TestRunnerExecutor:
    def test_job_runs_under_a_named_backend(self, tmp_path):
        with JobRunner(
            cache_dir=tmp_path / "cache", executor="serial"
        ) as runner:
            job = runner.submit(mini_request())
            assert job.wait(timeout=120)
            assert job.state == JobState.DONE
            assert job.computed_points == job.total_points

    def test_job_request_backend_beats_the_runner_default(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            job = runner.submit(mini_request(executor="serial"))
            assert job.wait(timeout=120)
            assert job.state == JobState.DONE

    def test_subprocess_backend_end_to_end(self, tmp_path):
        with JobRunner(
            cache_dir=tmp_path / "cache",
            workers=2,
            executor="subprocess-workers",
        ) as runner:
            job = runner.submit(mini_request())
            assert job.wait(timeout=120)
            assert job.state == JobState.DONE
            assert job.computed_points == job.total_points

        # Byte-identity: a serial rerun of the same request is served
        # entirely from the store the subprocess backend populated.
        with JobRunner(cache_dir=tmp_path / "cache") as serial_runner:
            rerun = serial_runner.submit(mini_request())
            assert rerun.wait(timeout=120)
            assert rerun.state == JobState.DONE
            assert rerun.computed_points == 0
            assert rerun.cached_points == rerun.total_points

    def test_executor_failure_is_captured_as_typed_error(self, tmp_path):
        runner = JobRunner(
            cache_dir=tmp_path / "cache", executor=_Explosive()
        )
        experiment, scale = mini_request().build()
        with pytest.raises(ExecutorError):
            runner.run_experiment(experiment, scale)
        job = runner.get(derive_job_id(experiment, scale))
        assert job.state == JobState.FAILED
        assert job.error == {
            "type": "ExecutorError",
            "message": "injected worker meltdown",
        }
        runner.close()

    def test_unknown_backend_fails_the_job_not_the_runner(self, tmp_path):
        # CLI/serve validate upfront; a hand-built runner resolves at
        # execution time and must capture the typed failure.
        runner = JobRunner(
            cache_dir=tmp_path / "cache", executor="warp-drive"
        )
        job = runner.submit(mini_request())
        assert job.wait(timeout=120)
        assert job.state == JobState.FAILED
        assert job.error["type"] == "UnknownExecutorError"
        assert "warp-drive" in job.error["message"]

        # The runner itself survives and can run the next job plainly.
        runner.executor = None
        retry = runner.submit(mini_request())
        assert retry.wait(timeout=120)
        assert retry.state == JobState.DONE
        runner.close()

    def test_close_shuts_name_resolved_backends(self, tmp_path):
        runner = JobRunner(
            cache_dir=tmp_path / "cache",
            workers=1,
            executor="subprocess-workers",
        )
        job = runner.submit(mini_request())
        assert job.wait(timeout=120)
        assert job.state == JobState.DONE
        backend = runner._executors["subprocess-workers"]
        assert backend.active
        runner.close()
        assert not backend.active
