"""JobRunner lifecycle: idempotent ids, cancel, failure capture, results."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError, UnknownJobError, ValidationError
from repro.experiments.config import get_scale
from repro.jobs import JobRequest, JobRunner, JobState, derive_job_id

MINI_SPEC = {
    "sweep": {
        "name": "jobs-mini",
        "tasksets_per_point": 2,
        "utilization": {"start": 0.5, "stop": 1.0, "step": 0.5},
    },
    "grid": {
        "cores": [2],
        "heuristic": ["best-fit", "worst-fit"],
        "ordering": ["rm"],
        "admission": ["rta"],
    },
}


def mini_request(**overrides) -> JobRequest:
    merged = {"spec": MINI_SPEC, "scale": "smoke", **overrides}
    return JobRequest.from_dict(merged)


class TestJobRequest:
    def test_bare_grid_document_is_a_spec_submission(self):
        request = JobRequest.from_dict(MINI_SPEC)
        assert request.spec == MINI_SPEC
        assert request.experiment is None

    def test_envelope_with_overrides(self):
        request = JobRequest.from_dict(
            {
                "spec": MINI_SPEC,
                "scale": "smoke",
                "seed": 9,
                "allocator": ["hydra"],
                "workload": ["uunifast"],
            }
        )
        assert request.seed == 9
        assert request.allocators == ("hydra",)
        assert request.workloads == ("uunifast",)

    def test_experiment_by_name(self):
        request = JobRequest.from_dict(
            {"experiment": "table1", "scale": "smoke"}
        )
        experiment, scale = request.build()
        assert experiment.name == "table1"
        assert scale.name == "smoke"

    def test_needs_exactly_one_of_spec_and_experiment(self):
        with pytest.raises(ValidationError):
            JobRequest.from_dict({"scale": "smoke"})
        with pytest.raises(ValidationError):
            JobRequest.from_dict(
                {"experiment": "table1", "spec": MINI_SPEC}
            )

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValidationError, match="unknown job request key"):
            JobRequest.from_dict(
                {"experiment": "table1", "scael": "smoke"}
            )

    def test_rejects_bad_types(self):
        with pytest.raises(ValidationError, match="seed"):
            JobRequest.from_dict({"experiment": "table1", "seed": "7"})
        with pytest.raises(ValidationError, match="scale"):
            JobRequest.from_dict({"experiment": "table1", "scale": 3})
        with pytest.raises(ValidationError, match="allocator"):
            JobRequest.from_dict({"spec": MINI_SPEC, "allocator": []})
        with pytest.raises(ValidationError, match="JSON object"):
            JobRequest.from_dict([MINI_SPEC])

    def test_overrides_only_apply_to_spec_submissions(self):
        with pytest.raises(ValidationError, match="overrides"):
            JobRequest(experiment="table1", allocators=("hydra",))

    def test_round_trips_to_dict(self):
        request = mini_request(seed=5)
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_unknown_scale_is_a_typed_error_at_build(self):
        with pytest.raises(ValidationError, match="unknown scale"):
            mini_request(scale="galactic").build()


class TestJobIds:
    def test_same_request_same_id(self):
        a = mini_request().build()
        b = mini_request().build()
        assert derive_job_id(*a) == derive_job_id(*b)

    def test_seed_and_scale_change_the_id(self):
        base = derive_job_id(*mini_request().build())
        assert derive_job_id(*mini_request(seed=1).build()) != base
        assert (
            derive_job_id(*mini_request(scale="default").build()) != base
        )

    def test_worker_count_never_changes_the_id(self):
        experiment, scale = mini_request().build()
        # The id is a pure function of experiment + scale; JobRunner
        # worker settings are not an input at all.
        assert derive_job_id(experiment, scale) == derive_job_id(
            experiment, scale
        )


class TestSubmitLifecycle:
    def test_submit_runs_to_done_with_progress(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            job = runner.submit(mini_request())
            assert job.wait(timeout=120)
            assert job.state == JobState.DONE
            assert job.error is None
            assert job.total_points > 0
            assert job.computed_points == job.total_points
            assert job.cached_points == 0
            assert job.finished >= job.started >= job.created

    def test_duplicate_submit_returns_same_job(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            first = runner.submit(mini_request())
            second = runner.submit(mini_request())
            assert second is first
            assert first.wait(timeout=120)
            # Still idempotent after completion.
            assert runner.submit(mini_request()) is first

    def test_warm_cache_completes_without_recomputation(self, tmp_path):
        cache = tmp_path / "cache"
        with JobRunner(cache_dir=cache) as runner:
            job = runner.submit(mini_request())
            assert job.wait(timeout=120)
            job_id = job.id

        with JobRunner(cache_dir=cache) as fresh:
            rerun = fresh.submit(mini_request())
            assert rerun.id == job_id
            assert rerun.wait(timeout=120)
            assert rerun.state == JobState.DONE
            assert rerun.computed_points == 0
            assert rerun.cached_points == rerun.total_points

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        runner = JobRunner(cache_dir=tmp_path / "cache")
        job = runner.submit(mini_request())
        # Cancel can race completion on a fast machine; both outcomes
        # are terminal, and a queued hit must carry the cancel error.
        cancelled = runner.cancel(job.id)
        assert cancelled is job
        assert job.wait(timeout=120)
        assert job.state in (JobState.CANCELLED, JobState.DONE)
        if job.state == JobState.CANCELLED:
            assert job.error["type"] == "SweepCancelled"
        runner.close()

    def test_cancel_mid_run_stops_between_batches(self, tmp_path):
        runner = JobRunner(cache_dir=tmp_path / "cache")

        def cancel_after_first_point(job) -> None:
            if job.computed_points >= 1:
                runner.cancel(job.id)

        runner.on_progress = cancel_after_first_point
        job = runner.submit(mini_request())
        assert job.wait(timeout=120)
        assert job.state == JobState.CANCELLED
        assert job.error["type"] == "SweepCancelled"
        assert 1 <= job.computed_points < job.total_points
        runner.close()

        # Resubmission under the same id resumes from the cache.
        with JobRunner(cache_dir=tmp_path / "cache") as fresh:
            resumed = fresh.submit(mini_request())
            assert resumed.id == job.id
            assert resumed.wait(timeout=120)
            assert resumed.state == JobState.DONE
            assert resumed.cached_points >= job.computed_points

    def test_run_experiment_rides_a_background_duplicate(self, tmp_path):
        # Regression: waiting on a queued/running duplicate must not
        # hold the runner lock — the drain worker needs it to start
        # the queued job, so an in-lock wait deadlocked forever.
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            submitted = runner.submit(mini_request())
            experiment, scale = mini_request().build()
            job = runner.run_experiment(experiment, scale)
            assert job.id == submitted.id
            assert job.state == JobState.DONE

    def test_execute_never_resurrects_a_cancelled_job(self, tmp_path):
        # Regression: a cancel landing between the drain worker's
        # queue pop and its state check used to be lost — the job ran
        # anyway and flipped back to running.  The queued → running
        # claim is atomic now, so execution is simply refused.
        from repro.jobs.runner import Job

        runner = JobRunner(cache_dir=tmp_path / "cache")
        experiment, scale = mini_request().build()
        job = Job(derive_job_id(experiment, scale), experiment, scale)
        runner._jobs[job.id] = job
        runner.cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert runner._execute(job) is False
        assert job.state == JobState.CANCELLED
        assert job.error["type"] == "SweepCancelled"
        runner.close()

    def test_cancelled_job_reports_cancelled_even_on_warm_cache(
        self, tmp_path
    ):
        # A warm cache could serve every point without computing, but
        # a cancelled job must still honour the cancel — not complete
        # done with a cancellation error attached.
        cache = tmp_path / "cache"
        with JobRunner(cache_dir=cache) as warmup:
            assert warmup.run(mini_request()).state == JobState.DONE

        from repro.jobs.runner import Job

        runner = JobRunner(cache_dir=cache)
        experiment, scale = mini_request().build()
        job = Job(derive_job_id(experiment, scale), experiment, scale)
        job._cancel.set()  # cancel requested before execution begins
        runner._jobs[job.id] = job
        runner._execute(job)
        assert job.state == JobState.CANCELLED
        assert job.error["type"] == "SweepCancelled"
        runner.close()

    def test_failure_is_captured_as_typed_error(self, tmp_path):
        experiment, scale = mini_request().build()

        def boom(raw):
            raise RuntimeError("aggregate blew   up")

        experiment.aggregate = boom
        runner = JobRunner(cache_dir=tmp_path / "cache")
        job_id = derive_job_id(experiment, scale)
        with pytest.raises(RuntimeError):
            runner.run_experiment(experiment, scale)
        job = runner.get(job_id)
        assert job.state == JobState.FAILED
        assert job.error == {
            "type": "RuntimeError",
            "message": "aggregate blew up",  # whitespace collapsed
        }
        runner.close()

    def test_resubmit_after_failure_requeues_fresh(self, tmp_path):
        experiment, scale = mini_request().build()
        original_aggregate = experiment.aggregate
        experiment.aggregate = lambda raw: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        runner = JobRunner(cache_dir=tmp_path / "cache")
        with pytest.raises(RuntimeError):
            runner.run_experiment(experiment, scale)
        failed = runner.get(derive_job_id(experiment, scale))
        assert failed.state == JobState.FAILED

        experiment.aggregate = original_aggregate
        retried = runner.run_experiment(experiment, scale)
        assert retried.id == failed.id
        assert retried is not failed
        assert retried.state == JobState.DONE
        runner.close()

    def test_unknown_job_is_a_typed_error(self, tmp_path):
        runner = JobRunner()
        with pytest.raises(UnknownJobError, match="unknown job"):
            runner.get("deadbeef")
        with pytest.raises(UnknownJobError):
            runner.cancel("deadbeef")
        with pytest.raises(UnknownJobError):
            runner.result("deadbeef")
        runner.close()

    def test_jobs_listing_preserves_submission_order(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            first = runner.submit(mini_request())
            second = runner.submit(mini_request(seed=3))
            assert [j.id for j in runner.jobs()] == [first.id, second.id]


class TestResults:
    def test_result_requires_done(self, tmp_path):
        runner = JobRunner(cache_dir=tmp_path / "cache")
        experiment, scale = mini_request().build()
        experiment.aggregate = lambda raw: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        with pytest.raises(RuntimeError):
            runner.run_experiment(experiment, scale)
        with pytest.raises(ConfigError, match="not done"):
            runner.result(derive_job_id(experiment, scale))
        runner.close()

    def test_result_matches_direct_run(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            request = mini_request()
            job = runner.run(request)
            assert job.state == JobState.DONE
            served = runner.result(job.id)

        experiment, scale = mini_request().build()
        direct = experiment.run(scale)
        assert served.to_json() == direct.to_json()

    def test_result_without_store_serves_in_memory_copy(self):
        with JobRunner() as runner:
            job = runner.run(mini_request())
            assert runner.result(job.id) is job.result

    def test_result_fetch_performs_zero_writes(self, tmp_path):
        cache = tmp_path / "cache"
        with JobRunner(cache_dir=cache) as runner:
            job = runner.run(mini_request())

            def tree_state():
                state = []
                for dirpath, _dirs, files in os.walk(cache):
                    for name in files:
                        path = os.path.join(dirpath, name)
                        info = os.stat(path)
                        state.append(
                            (path, info.st_size, info.st_mtime_ns)
                        )
                return sorted(state)

            before = tree_state()
            served = runner.result(job.id)
            assert tree_state() == before
        assert served.experiment == "sweep:jobs-mini"

    def test_status_document_shape(self, tmp_path):
        with JobRunner(cache_dir=tmp_path / "cache") as runner:
            job = runner.run(mini_request())
            doc = job.to_dict()
        assert doc["id"] == job.id
        assert doc["state"] == "done"
        assert doc["experiment"] == "sweep:jobs-mini"
        assert doc["scale"] == "smoke"
        assert doc["error"] is None
        progress = doc["progress"]
        assert progress["total_points"] == (
            progress["computed_points"] + progress["cached_points"]
        )


class TestRunnerLifetime:
    def test_close_is_idempotent_and_runner_restartable(self, tmp_path):
        runner = JobRunner(cache_dir=tmp_path / "cache")
        job = runner.submit(mini_request())
        assert job.wait(timeout=120)
        runner.close()
        runner.close()
        # A closed runner accepts new submissions (thread restarts).
        rerun = runner.submit(mini_request(seed=11))
        assert rerun.wait(timeout=120)
        assert rerun.state == JobState.DONE
        runner.close()

    def test_scale_names_resolve_like_the_cli(self):
        request = JobRequest.from_dict({"experiment": "table1"})
        _, scale = request.build()
        assert scale.name == get_scale(None).name
