"""Property-based stress tests of the simulator and the verifier oracle.

Random workloads, strong invariants:

* slices of one core never overlap, and busy time conserves exactly;
* a job never runs on two cores at once (migrating tasks included);
* every allocator's output passes the independent verifier;
* serialisation round-trips arbitrary generated models.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimTask, Simulator

# --------------------------------------------------------------------------
# Random simulator workloads
# --------------------------------------------------------------------------


@st.composite
def sim_workloads(draw):
    cores = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    for i in range(n):
        period = draw(
            st.floats(min_value=2.0, max_value=50.0), label=f"T{i}"
        )
        utilization = draw(
            st.floats(min_value=0.05, max_value=0.4), label=f"u{i}"
        )
        migrating = draw(st.booleans(), label=f"m{i}")
        preemptible = draw(st.booleans(), label=f"p{i}")
        jitter = draw(
            st.sampled_from([0.0, 0.0, 0.3]), label=f"j{i}"
        )
        tasks.append(
            SimTask(
                name=f"t{i}",
                wcet=period * utilization,
                period=period,
                priority=i,
                core=None if migrating else draw(
                    st.integers(0, cores - 1), label=f"c{i}"
                ),
                preemptible=preemptible,
                release_jitter=jitter,
            )
        )
    duration = draw(st.floats(min_value=50.0, max_value=300.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return tasks, cores, duration, seed


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(workload=sim_workloads())
    def test_slices_never_overlap_per_core(self, workload):
        tasks, cores, duration, seed = workload
        result = Simulator(
            tasks, num_cores=cores, duration=duration, rng=seed,
            collect_slices=True,
        ).run()
        by_core: dict[int, list] = {}
        for s in result.slices:
            by_core.setdefault(s.core, []).append(s)
        for slices in by_core.values():
            slices.sort(key=lambda s: s.start)
            for earlier, later in zip(slices, slices[1:]):
                assert earlier.end <= later.start + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(workload=sim_workloads())
    def test_busy_time_conservation(self, workload):
        tasks, cores, duration, seed = workload
        result = Simulator(
            tasks, num_cores=cores, duration=duration, rng=seed,
            collect_slices=True,
        ).run()
        per_core: dict[int, float] = {m: 0.0 for m in range(cores)}
        for s in result.slices:
            per_core[s.core] += s.length
        for core in range(cores):
            assert per_core[core] == pytest.approx(
                result.busy_time[core], abs=1e-6
            )
            assert result.busy_time[core] <= duration + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(workload=sim_workloads())
    def test_job_never_on_two_cores_at_once(self, workload):
        tasks, cores, duration, seed = workload
        result = Simulator(
            tasks, num_cores=cores, duration=duration, rng=seed,
            collect_slices=True,
        ).run()
        # Group slices per task; within one task, releases are serial
        # (deadline = period) so its slices must never overlap in time,
        # across *all* cores.
        by_task: dict[str, list] = {}
        for s in result.slices:
            by_task.setdefault(s.task, []).append(s)
        for slices in by_task.values():
            slices.sort(key=lambda s: (s.start, s.end))
            for earlier, later in zip(slices, slices[1:]):
                assert earlier.end <= later.start + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(workload=sim_workloads())
    def test_completed_jobs_received_exactly_wcet(self, workload):
        tasks, cores, duration, seed = workload
        result = Simulator(
            tasks, num_cores=cores, duration=duration, rng=seed,
            collect_slices=True,
        ).run()
        by_task: dict[str, float] = {}
        for s in result.slices:
            by_task[s.task] = by_task.get(s.task, 0.0) + s.length
        wcets = {t.name: t.wcet for t in tasks}
        for task_name, total in by_task.items():
            finished = len(result.completed_jobs_of(task_name))
            started_unfinished = sum(
                1
                for j in result.jobs_of(task_name)
                if not j.finished and j.start is not None
            )
            low = wcets[task_name] * finished
            high = wcets[task_name] * (finished + started_unfinished)
            assert low - 1e-6 <= total <= high + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(workload=sim_workloads())
    def test_releases_respect_min_separation(self, workload):
        tasks, cores, duration, seed = workload
        result = Simulator(
            tasks, num_cores=cores, duration=duration, rng=seed
        ).run()
        periods = {t.name: t.period for t in tasks}
        for task in tasks:
            releases = sorted(
                j.release for j in result.jobs_of(task.name)
            )
            for a, b in zip(releases, releases[1:]):
                assert b - a >= periods[task.name] - 1e-9


# --------------------------------------------------------------------------
# Verifier as oracle over allocators, on random systems
# --------------------------------------------------------------------------


class TestVerifierOracle:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=0.3, max_value=1.8),
    )
    def test_all_allocators_verify_on_random_systems(
        self, seed, utilization
    ):
        from repro.core.hydra import HydraAllocator
        from repro.core.optimal import OptimalAllocator
        from repro.core.variants import (
            FirstFeasibleAllocator,
            LpRefinedHydraAllocator,
            SlackiestCoreAllocator,
        )
        from repro.core.verify import verify_allocation
        from repro.experiments.runner import build_hydra_system
        from repro.taskgen.synthetic import SyntheticConfig, generate_workload

        config = SyntheticConfig(security_task_count=(2, 4))
        workload = generate_workload(
            2, utilization, np.random.default_rng(seed), config
        )
        system = build_hydra_system(workload)
        if system is None:
            return
        allocators = [
            HydraAllocator(),
            FirstFeasibleAllocator(),
            SlackiestCoreAllocator(),
            LpRefinedHydraAllocator(),
            OptimalAllocator(search="branch-bound"),
        ]
        for allocator in allocators:
            allocation = allocator.allocate(system)
            if allocation.schedulable:
                result = verify_allocation(system, allocation)
                assert result.ok, f"{allocator.name}: {result.format()}"

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=0.3, max_value=1.5),
    )
    def test_exact_rta_allocations_verify_exactly(self, seed, utilization):
        from repro.core.hydra import HydraAllocator
        from repro.core.verify import verify_allocation
        from repro.experiments.runner import build_hydra_system
        from repro.taskgen.synthetic import SyntheticConfig, generate_workload

        config = SyntheticConfig(security_task_count=(2, 4))
        workload = generate_workload(
            2, utilization, np.random.default_rng(seed), config
        )
        system = build_hydra_system(workload)
        if system is None:
            return
        allocation = HydraAllocator(solver="exact-rta").allocate(system)
        if allocation.schedulable:
            assert verify_allocation(system, allocation, exact=True).ok


# --------------------------------------------------------------------------
# Serialisation round-trip property
# --------------------------------------------------------------------------


class TestSerializationProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        utilization=st.floats(min_value=0.2, max_value=1.6),
    )
    def test_workload_roundtrip(self, seed, utilization):
        from repro.io import taskset_from_dict, taskset_to_dict
        from repro.taskgen.synthetic import generate_workload

        workload = generate_workload(
            2, utilization, np.random.default_rng(seed)
        )
        assert taskset_from_dict(
            taskset_to_dict(workload.rt_tasks)
        ) == workload.rt_tasks
        assert taskset_from_dict(
            taskset_to_dict(workload.security_tasks)
        ) == workload.security_tasks
