"""Unit tests for the Eq. (5) linearised interference bound."""

from __future__ import annotations

import math

import pytest

from repro.analysis.interference import (
    Interferer,
    InterferenceEnv,
    linear_bound_met,
    linear_interference,
    min_feasible_period,
)
from repro.errors import ValidationError
from repro.model.task import RealTimeTask, SecurityTask


def rt(wcet: float, period: float, name: str = "r") -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period)


def sec(wcet: float = 5.0, tdes: float = 100.0, tmax: float = 1000.0,
        name: str = "s") -> SecurityTask:
    return SecurityTask(
        name=name, wcet=wcet, period_des=tdes, period_max=tmax
    )


class TestInterferer:
    def test_from_rt(self):
        i = Interferer.from_rt(rt(2.0, 10.0))
        assert (i.wcet, i.period) == (2.0, 10.0)
        assert i.utilization == pytest.approx(0.2)

    def test_from_security_uses_assigned_period(self):
        i = Interferer.from_security(sec(wcet=5.0), 250.0)
        assert i.period == 250.0
        assert i.utilization == pytest.approx(0.02)

    def test_rejects_invalid(self):
        with pytest.raises(ValidationError):
            Interferer(0.0, 10.0)
        with pytest.raises(ValidationError):
            Interferer(1.0, -1.0)


class TestInterferenceEnv:
    def test_aggregates(self):
        env = InterferenceEnv(
            [Interferer(2.0, 10.0), Interferer(3.0, 30.0)]
        )
        assert env.total_wcet == pytest.approx(5.0)
        assert env.utilization == pytest.approx(0.2 + 0.1)
        assert len(env) == 2

    def test_empty_env(self):
        env = InterferenceEnv()
        assert env.total_wcet == 0.0
        assert env.utilization == 0.0
        assert env.interference(123.0) == 0.0

    def test_interference_formula_matches_paper(self):
        # Eq. (5): Σ (1 + Ts/Tr)·Cr expanded = ΣCr + Ts·ΣCr/Tr.
        env = InterferenceEnv([Interferer(2.0, 10.0)])
        ts = 50.0
        expected = (1 + ts / 10.0) * 2.0
        assert env.interference(ts) == pytest.approx(expected)

    def test_interference_rejects_nonpositive_window(self):
        env = InterferenceEnv([Interferer(2.0, 10.0)])
        with pytest.raises(ValidationError):
            env.interference(0.0)

    def test_on_core_combines_rt_and_security(self):
        env = InterferenceEnv.on_core(
            [rt(2.0, 10.0)], [(sec(wcet=5.0), 200.0)]
        )
        assert env.total_wcet == pytest.approx(7.0)
        assert env.utilization == pytest.approx(0.2 + 0.025)

    def test_extended(self):
        env = InterferenceEnv([Interferer(2.0, 10.0)])
        bigger = env.extended([Interferer(1.0, 10.0)])
        assert bigger.total_wcet == pytest.approx(3.0)
        assert env.total_wcet == pytest.approx(2.0)


class TestLinearHelpers:
    def test_linear_interference_convenience(self):
        direct = linear_interference(50.0, [rt(2.0, 10.0)])
        env = InterferenceEnv.on_core([rt(2.0, 10.0)])
        assert direct == pytest.approx(env.interference(50.0))

    def test_linear_bound_met_true_and_false(self):
        env = InterferenceEnv.on_core([rt(5.0, 10.0)])  # U = .5
        task = sec(wcet=10.0, tdes=100.0, tmax=1000.0)
        # At T = 100: 10 + (5 + .5*100) = 65 ≤ 100 → met.
        assert linear_bound_met(task, 100.0, env)
        # At T = 20: 10 + (5 + 10) = 25 > 20 → not met.
        assert not linear_bound_met(task, 20.0, env)

    def test_min_feasible_period_formula(self):
        env = InterferenceEnv.on_core([rt(5.0, 10.0)])
        task = sec(wcet=10.0)
        # (Cs + K') / (1 − U) = 15 / 0.5 = 30.
        assert min_feasible_period(task, env) == pytest.approx(30.0)

    def test_min_feasible_period_saturated_core(self):
        env = InterferenceEnv.on_core([rt(10.0, 10.0)])  # U = 1
        assert min_feasible_period(sec(), env) == math.inf

    def test_min_feasible_period_idle_core(self):
        env = InterferenceEnv()
        task = sec(wcet=7.0)
        assert min_feasible_period(task, env) == pytest.approx(7.0)

    def test_min_feasible_satisfies_bound_exactly(self):
        env = InterferenceEnv.on_core(
            [rt(3.0, 17.0), rt(2.0, 29.0)]
        )
        task = sec(wcet=4.0)
        t_min = min_feasible_period(task, env)
        assert task.wcet + env.interference(t_min) == pytest.approx(t_min)
