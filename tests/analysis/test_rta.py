"""Unit tests for exact response-time analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.interference import Interferer
from repro.analysis.rta import (
    core_response_times,
    response_time,
    rta_schedulable,
)
from repro.errors import ValidationError
from repro.model.task import RealTimeTask


def rt(name: str, wcet: float, period: float) -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period)


class TestResponseTime:
    def test_no_interference(self):
        assert response_time(3.0, []) == 3.0

    def test_textbook_example(self):
        # Classic example: C=(1,2,3), T=(4,6,12) under RM.
        # R1 = 1; R2 = 2 + ceil(R2/4)*1 → 3;
        # R3: 6 → 7 → 9 → 10 → 10 (fixed point):
        #   3 + ceil(10/4)*1 + ceil(10/6)*2 = 3 + 3 + 4 = 10.
        assert response_time(1.0, []) == 1.0
        assert response_time(2.0, [(1.0, 4.0)]) == 3.0
        assert response_time(3.0, [(1.0, 4.0), (2.0, 6.0)]) == pytest.approx(
            10.0
        )

    def test_accepts_interferer_objects(self):
        assert response_time(2.0, [Interferer(1.0, 4.0)]) == 3.0

    def test_limit_exceeded_returns_inf(self):
        assert response_time(3.0, [(1.0, 4.0), (2.0, 6.0)], limit=9.0) == (
            math.inf
        )

    def test_saturated_interferers_return_inf(self):
        assert response_time(1.0, [(5.0, 10.0), (5.0, 10.0)]) == math.inf

    def test_blocking_term_added_once(self):
        without = response_time(2.0, [(1.0, 10.0)])
        with_blocking = response_time(2.0, [(1.0, 10.0)], blocking=1.0)
        assert with_blocking >= without + 1.0 - 1e-9

    def test_blocking_can_cascade_through_ceilings(self):
        # Blocking pushing R across a release boundary adds more than
        # the blocking itself.
        base = response_time(3.0, [(1.0, 4.0)])  # 3 + 1 = 4 → ceil grows
        assert base == pytest.approx(4.0)
        blocked = response_time(3.0, [(1.0, 4.0)], blocking=1.0)
        assert blocked == pytest.approx(6.0)  # 3+1+ceil(6/4)*1 = 6

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValidationError):
            response_time(0.0, [])
        with pytest.raises(ValidationError):
            response_time(1.0, [(0.0, 5.0)])
        with pytest.raises(ValidationError):
            response_time(1.0, [], blocking=-1.0)

    def test_response_independent_of_own_period(self):
        # The fixed point only involves the interferers, a structural
        # fact the exact-RTA allocator exploits.
        interferers = [(2.0, 7.0), (3.0, 13.0)]
        r = response_time(4.0, interferers)
        assert r == response_time(4.0, interferers, limit=r + 100.0)


class TestCoreResponseTimes:
    def test_rm_order_and_values(self):
        tasks = [rt("lo", 3.0, 12.0), rt("hi", 1.0, 4.0), rt("mid", 2.0, 6.0)]
        results = core_response_times(tasks)
        assert list(results) == ["hi", "mid", "lo"]
        assert results["hi"] == 1.0
        assert results["mid"] == 3.0
        assert results["lo"] == pytest.approx(10.0)

    def test_unschedulable_marked_inf(self):
        tasks = [rt("hi", 3.0, 4.0), rt("lo", 3.0, 6.0)]
        results = core_response_times(tasks)
        assert results["hi"] == 3.0
        assert results["lo"] == math.inf

    def test_empty_core(self):
        assert core_response_times([]) == {}


class TestRtaSchedulable:
    def test_exactly_full_harmonic_set(self):
        # C=(1,2,3), T=(4,6,12): schedulable, exactly full at t = 12.
        tasks = [rt("a", 1, 4), rt("b", 2, 6), rt("c", 3, 12)]
        assert rta_schedulable(tasks)

    def test_overloaded_set_rejected(self):
        tasks = [rt("a", 3, 4), rt("b", 3, 6)]
        assert not rta_schedulable(tasks)

    def test_rta_beats_liu_layland(self):
        # U = 1.0 harmonic set passes RTA but exceeds the LL bound.
        from repro.analysis.schedulability import liu_layland_test

        tasks = [rt("a", 2, 4), rt("b", 4, 8)]
        assert rta_schedulable(tasks)
        assert not liu_layland_test(tasks)

    def test_single_task(self):
        assert rta_schedulable([rt("a", 10, 10)])

    def test_empty(self):
        assert rta_schedulable([])
