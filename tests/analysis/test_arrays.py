"""Property suites for the structure-of-arrays analysis core.

Three contracts pin the array layer to the scalar golden reference:

* **Losslessness** — ``TaskArrays.from_tasks`` → ``to_tasks`` is the
  identity, field for field, so nothing is lost entering the array
  world;
* **Agreement** — every ``*_arrays`` analysis (DBF, interference,
  blocking, grid RTA) reaches the same values/decisions as its scalar
  twin on hypothesis-generated task sets, not just the golden points;
* **Admission equivalence** — :class:`ExactAdmissionCore` answers every
  probe exactly as ``rta_test`` on the rebuilt task list would,
  including on pre-seeded (even unschedulable) cores, and
  ``_fixed_point`` is bit-identical to :func:`response_time`.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.admission import ExactAdmissionCore, _fixed_point
from repro.analysis.arrays import TaskArrays, pad_task_grid
from repro.analysis.blocking import (
    max_tolerable_blocking,
    max_tolerable_blocking_arrays,
    rt_schedulable_with_blocking,
    rt_schedulable_with_blocking_arrays,
)
from repro.analysis.dbf import (
    dbf_check_points,
    dbf_step_points_arrays,
    demand_bound,
    demand_bound_arrays,
    necessary_condition,
    necessary_condition_arrays,
    total_demand,
    total_demand_arrays,
)
from repro.analysis.interference import (
    InterferenceEnv,
    linear_interference,
    linear_interference_arrays,
    min_feasible_period,
    min_feasible_periods_arrays,
)
from repro.analysis.rta import (
    response_time,
    response_times_grid,
    rta_schedulable,
    rta_schedulable_sets,
)
from repro.analysis.schedulability import rta_test
from repro.model.priority import rate_monotonic_order
from repro.model.task import RealTimeTask, SecurityTask


@st.composite
def task_sets(draw, min_size=1, max_size=12, constrained_deadlines=True):
    """Task sets with unique names and bounded parameters.

    Unique names matter: the scalar reference keys results by task
    name, so duplicate names would make the reference itself
    ill-defined.
    """
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    tasks = []
    for i in range(n):
        period = draw(st.floats(min_value=5.0, max_value=1000.0))
        wcet = period * draw(st.floats(min_value=0.005, max_value=0.6))
        deadline = period
        if constrained_deadlines and draw(st.booleans()):
            # min() guards the f≈1.0 draws, where round-off could push
            # the deadline one ulp past the period.
            deadline = min(
                period,
                wcet
                + (period - wcet)
                * draw(st.floats(min_value=0.1, max_value=1.0)),
            )
        tasks.append(
            RealTimeTask(
                name=f"t{i:03d}", wcet=wcet, period=period, deadline=deadline
            )
        )
    return tasks


# ---------------------------------------------------------------- arrays


@settings(max_examples=100, deadline=None)
@given(tasks=task_sets())
def test_round_trip_is_lossless(tasks):
    assert TaskArrays.from_tasks(tasks).to_tasks() == tasks


@settings(max_examples=100, deadline=None)
@given(tasks=task_sets())
def test_rm_sorted_matches_object_order(tasks):
    ordered = TaskArrays.from_tasks(tasks).rm_sorted()
    reference = rate_monotonic_order(tasks)
    assert ordered.to_tasks() == reference


def test_round_trip_preserves_priorities():
    tasks = [
        RealTimeTask(name="a", wcet=1.0, period=10.0, priority=3),
        RealTimeTask(name="b", wcet=2.0, period=20.0),
    ]
    back = TaskArrays.from_tasks(tasks).to_tasks()
    assert back == tasks
    assert back[0].priority == 3 and back[1].priority is None


@settings(max_examples=50, deadline=None)
@given(sets=st.lists(task_sets(max_size=8), min_size=1, max_size=6))
def test_pad_task_grid_shapes_and_neutral_padding(sets):
    arrays = [TaskArrays.from_tasks(s) for s in sets]
    wcets, periods, deadlines, valid = pad_task_grid(arrays)
    width = max(len(s) for s in sets)
    assert wcets.shape == (len(sets), width)
    for row, s in enumerate(sets):
        assert valid[row, : len(s)].all() and not valid[row, len(s):].any()
        assert (wcets[row, len(s):] == 0.0).all()
        assert np.isinf(periods[row, len(s):]).all()


# ------------------------------------------------------------------- dbf


@settings(max_examples=100, deadline=None)
@given(
    tasks=task_sets(),
    horizons=st.lists(
        st.floats(min_value=0.0, max_value=5000.0), min_size=1, max_size=5
    ),
)
def test_dbf_arrays_agree_with_scalar(tasks, horizons):
    arrays = TaskArrays.from_tasks(tasks)
    for t in horizons:
        per_task = demand_bound_arrays(arrays, t)
        assert per_task.shape == (len(tasks),)
        for i, task in enumerate(tasks):
            # floor over identical float inputs — exact agreement.
            assert per_task[i] == demand_bound(task, t)
        assert math.isclose(
            float(total_demand_arrays(arrays, t)),
            total_demand(tasks, t),
            rel_tol=1e-12,
            abs_tol=1e-9,
        )


@settings(max_examples=100, deadline=None)
@given(
    tasks=task_sets(),
    horizon=st.floats(min_value=0.0, max_value=5000.0),
)
def test_dbf_step_points_agree_with_scalar(tasks, horizon):
    array_points = dbf_step_points_arrays(
        TaskArrays.from_tasks(tasks), horizon
    )
    scalar_points = sorted(set(dbf_check_points(tasks, horizon)))
    assert np.allclose(array_points, scalar_points, rtol=0, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    tasks=task_sets(),
    cores=st.integers(min_value=1, max_value=8),
)
def test_necessary_condition_arrays_agrees(tasks, cores):
    assert necessary_condition_arrays(
        TaskArrays.from_tasks(tasks), cores
    ) == necessary_condition(tasks, cores)


# ---------------------------------------------------------- interference


@settings(max_examples=100, deadline=None)
@given(
    tasks=task_sets(constrained_deadlines=False),
    periods=st.lists(
        st.floats(min_value=1.0, max_value=10_000.0),
        min_size=1,
        max_size=6,
    ),
)
def test_linear_interference_arrays_agrees(tasks, periods):
    arrays = TaskArrays.from_tasks(tasks)
    bounds = linear_interference_arrays(periods, arrays)
    for i, period in enumerate(periods):
        assert math.isclose(
            float(bounds[i]),
            linear_interference(period, tasks),
            rel_tol=1e-12,
            abs_tol=1e-9,
        )


@settings(max_examples=100, deadline=None)
@given(
    tasks=task_sets(constrained_deadlines=False),
    wcets=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=6
    ),
)
def test_min_feasible_periods_arrays_agrees(tasks, wcets):
    env = InterferenceEnv.from_arrays(TaskArrays.from_tasks(tasks))
    batched = min_feasible_periods_arrays(wcets, env)
    for i, wcet in enumerate(wcets):
        task = SecurityTask(
            name="probe", wcet=wcet, period_des=1e6, period_max=1e7
        )
        scalar = min_feasible_period(task, env)
        if math.isinf(scalar):
            assert math.isinf(batched[i])
        else:
            assert math.isclose(
                float(batched[i]), scalar, rel_tol=1e-12, abs_tol=1e-9
            )


@settings(max_examples=50, deadline=None)
@given(tasks=task_sets(constrained_deadlines=False))
def test_env_from_arrays_matches_on_core(tasks):
    by_arrays = InterferenceEnv.from_arrays(TaskArrays.from_tasks(tasks))
    by_objects = InterferenceEnv.on_core(tasks)
    assert math.isclose(
        by_arrays.total_wcet, by_objects.total_wcet, rel_tol=1e-12
    )
    assert math.isclose(
        by_arrays.utilization, by_objects.utilization, rel_tol=1e-12
    )


# -------------------------------------------------------------- blocking


@settings(max_examples=80, deadline=None)
@given(
    tasks=task_sets(max_size=8),
    blocking=st.floats(min_value=0.0, max_value=50.0),
)
def test_blocking_schedulability_arrays_agrees(tasks, blocking):
    assert rt_schedulable_with_blocking_arrays(
        TaskArrays.from_tasks(tasks), blocking
    ) == rt_schedulable_with_blocking(tasks, blocking)


@settings(max_examples=30, deadline=None)
@given(tasks=task_sets(max_size=6))
def test_max_tolerable_blocking_arrays_agrees(tasks):
    scalar = max_tolerable_blocking(tasks)
    batched = max_tolerable_blocking_arrays(TaskArrays.from_tasks(tasks))
    if math.isinf(scalar):
        assert math.isinf(batched)
    else:
        # Both bisect the same monotone predicate over the same bracket
        # to tolerance 1e-6; allow both tolerances plus round-off.
        assert abs(batched - scalar) <= 2.5e-6


# -------------------------------------------------------------- grid RTA


@settings(max_examples=50, deadline=None)
@given(sets=st.lists(task_sets(max_size=10), min_size=1, max_size=8))
def test_grid_rta_decisions_match_scalar(sets):
    grid = pad_task_grid(
        [TaskArrays.from_tasks(s).rm_sorted() for s in sets]
    )
    wcets, periods, deadlines, valid = grid
    responses = response_times_grid(wcets, periods, deadlines, valid)
    verdicts = np.where(valid, responses <= deadlines + 1e-9, True).all(
        axis=1
    )
    for row, tasks in enumerate(sets):
        assert bool(verdicts[row]) == rta_schedulable(tasks)


@settings(max_examples=30, deadline=None)
@given(sets=st.lists(task_sets(max_size=10), min_size=1, max_size=6))
def test_rta_schedulable_sets_matches_scalar(sets):
    batched = rta_schedulable_sets(sets)
    assert [bool(v) for v in batched] == [rta_schedulable(s) for s in sets]


# ------------------------------------------------------------- admission


@settings(max_examples=150, deadline=None)
@given(tasks=task_sets(max_size=8))
def test_fixed_point_bit_identical_to_response_time(tasks):
    """``_fixed_point`` is the admission loop's lean twin of
    :func:`response_time` — same accumulation order, bit for bit."""
    ordered = rate_monotonic_order(tasks)
    pairs = [(t.wcet, t.period) for t in ordered[:-1]]
    probe = ordered[-1]
    reference = response_time(probe.wcet, pairs, limit=probe.deadline)
    twin = _fixed_point(probe.wcet, pairs, probe.deadline)
    assert twin == reference or (
        math.isinf(twin) and math.isinf(reference)
    )


@settings(max_examples=60, deadline=None)
@given(stream=task_sets(max_size=14, constrained_deadlines=True))
def test_admission_core_matches_rta_test_incrementally(stream):
    """Every probe verdict equals ``rta_test`` on the rebuilt list, and
    accepted tasks keep the state consistent for the next probe."""
    state = ExactAdmissionCore()
    placed = []
    for task in stream:
        assert state.admits(task) == rta_test([*placed, task])
        if rta_test([*placed, task]):
            state.add(task)
            placed.append(task)


@settings(max_examples=60, deadline=None)
@given(
    residents=task_sets(max_size=10),
    probes=task_sets(min_size=1, max_size=3),
)
def test_admission_core_matches_rta_test_preseeded(residents, probes):
    """Pre-seeded cores — schedulable or not — answer probes exactly
    like the from-scratch reference test."""
    state = ExactAdmissionCore(residents)
    for i, probe in enumerate(probes):
        # Unique names: the reference keys results by name.
        unique = RealTimeTask(
            name=f"probe{i:02d}",
            wcet=probe.wcet,
            period=probe.period,
            deadline=probe.deadline,
        )
        assert state.admits(unique) == rta_test([*residents, unique])
