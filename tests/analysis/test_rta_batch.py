"""Equivalence suite: batched RTA vs the scalar fixed-point solver.

The batched solver is the fast path on the partitioning heuristics'
admission loop, so it must be *decision-identical* to the scalar one —
including unschedulable (``inf``) verdicts.  The random-core sweep
below covers 200 generated cores spanning schedulable, overloaded and
exactly-critical utilisations.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.rta import (
    core_response_times,
    core_response_times_batch,
    response_time,
    response_times_batch,
    rta_schedulable,
    rta_schedulable_batch,
)
from repro.errors import ValidationError
from repro.model.task import RealTimeTask


def _random_core(rng: np.random.Generator) -> list[RealTimeTask]:
    """One random core: n tasks, total utilisation spanning ~0.2 … ~1.3
    so both schedulable and unschedulable cores appear."""
    n = int(rng.integers(1, 30))
    periods = rng.uniform(5.0, 1000.0, n)
    target = rng.uniform(0.2, 1.3)
    shares = rng.dirichlet(np.ones(n)) * target
    tasks = []
    for i, (u, p) in enumerate(zip(shares, periods)):
        wcet = min(max(u * p, 1e-4), p)  # keep C ≤ T (= implicit deadline)
        tasks.append(RealTimeTask(name=f"t{i:03d}", wcet=float(wcet),
                                  period=float(p)))
    return tasks


class TestRandomCoreEquivalence:
    def test_batch_matches_scalar_on_200_random_cores(self):
        rng = np.random.default_rng(20180319)
        saw_inf = saw_finite = 0
        for _ in range(200):
            tasks = _random_core(rng)
            scalar = core_response_times(tasks)
            batch = core_response_times_batch(tasks)
            assert scalar.keys() == batch.keys()
            for name in scalar:
                s, b = scalar[name], batch[name]
                if math.isinf(s):
                    saw_inf += 1
                    assert math.isinf(b), (
                        f"{name}: scalar=inf but batch={b}"
                    )
                else:
                    saw_finite += 1
                    assert b == pytest.approx(s, abs=1e-9), (
                        f"{name}: scalar={s} batch={b}"
                    )
            assert rta_schedulable(tasks) == rta_schedulable_batch(tasks)
        # The sweep must actually exercise both verdict kinds.
        assert saw_inf > 0
        assert saw_finite > 0


class TestLowLevelBatch:
    def test_empty_core(self):
        assert response_times_batch([], []).size == 0
        assert rta_schedulable_batch([]) is True

    def test_single_task_is_its_own_wcet(self):
        out = response_times_batch([3.0], [10.0])
        assert out[0] == pytest.approx(3.0)

    def test_matches_scalar_with_blocking(self):
        wcets, periods = [1.0, 2.0, 3.0], [8.0, 20.0, 50.0]
        batch = response_times_batch(wcets, periods, blocking=2.5)
        for i in range(3):
            interferers = list(zip(wcets[:i], periods[:i]))
            scalar = response_time(wcets[i], interferers, blocking=2.5)
            assert batch[i] == pytest.approx(scalar, abs=1e-9)

    def test_saturated_interferers_give_inf(self):
        # Interferer utilisation of task 2 is exactly 1.0.
        out = response_times_batch([5.0, 5.0, 1.0], [10.0, 10.0, 100.0])
        assert math.isinf(out[2])

    def test_deadline_limit_marks_inf(self):
        # Task 1's fixed point is 1 + ⌈6/6⌉·5 = 6, above a deadline of 5.
        out = response_times_batch(
            [5.0, 1.0], [6.0, 50.0], deadlines=[6.0, 5.0]
        )
        assert math.isinf(out[1])
        unlimited = response_times_batch([5.0, 1.0], [6.0, 50.0])
        assert unlimited[1] == pytest.approx(6.0)
        # The scalar path agrees on both verdicts.
        assert math.isinf(response_time(1.0, [(5.0, 6.0)], limit=5.0))
        assert response_time(1.0, [(5.0, 6.0)]) == pytest.approx(6.0)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValidationError):
            response_times_batch([0.0], [10.0])
        with pytest.raises(ValidationError):
            response_times_batch([1.0], [-1.0])
        with pytest.raises(ValidationError):
            response_times_batch([1.0], [10.0], blocking=-0.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            response_times_batch([1.0, 2.0], [10.0])
        with pytest.raises(ValidationError):
            response_times_batch([1.0], [10.0], deadlines=[5.0, 6.0])


class TestAdmissionDispatch:
    def test_rta_test_agrees_with_both_paths_across_sizes(self):
        from repro.analysis.schedulability import rta_batch_test, rta_test

        rng = np.random.default_rng(99)
        for _ in range(40):
            tasks = _random_core(rng)
            assert (
                rta_test(tasks)
                == rta_batch_test(tasks)
                == rta_schedulable(tasks)
            )

    def test_rta_batch_registered_as_admission_test(self):
        from repro.analysis.schedulability import get_admission_test

        test = get_admission_test("rta-batch")
        assert test([RealTimeTask(name="a", wcet=1.0, period=10.0)])
