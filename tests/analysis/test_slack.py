"""Unit tests for per-core slack accounting."""

from __future__ import annotations

import pytest

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.analysis.slack import CoreSlack, core_slack, partition_slack
from repro.model.platform import Platform
from repro.model.system import Partition
from repro.model.task import RealTimeTask, TaskSet


@pytest.fixture
def partition() -> Partition:
    platform = Platform(2)
    tasks = TaskSet(
        [
            RealTimeTask(name="a", wcet=3.0, period=10.0),
            RealTimeTask(name="b", wcet=2.0, period=10.0),
        ]
    )
    return Partition(platform, tasks, {"a": 0, "b": 0})


class TestCoreSlack:
    def test_slack_value(self):
        slack = CoreSlack(core=0, rt_utilization=0.3,
                          security_utilization=0.2)
        assert slack.total_utilization == pytest.approx(0.5)
        assert slack.slack == pytest.approx(0.5)

    def test_slack_clamped_at_zero(self):
        slack = CoreSlack(core=0, rt_utilization=0.9,
                          security_utilization=0.3)
        assert slack.slack == 0.0

    def test_core_slack_from_partition(self, partition):
        assert core_slack(partition, 0).slack == pytest.approx(0.5)
        assert core_slack(partition, 1).slack == pytest.approx(1.0)

    def test_core_slack_with_security_env(self, partition):
        env = InterferenceEnv([Interferer(10.0, 100.0)])
        slack = core_slack(partition, 0, security_env=env)
        assert slack.security_utilization == pytest.approx(0.1)
        assert slack.slack == pytest.approx(0.4)

    def test_partition_slack_covers_all_cores(self, partition):
        slacks = partition_slack(partition)
        assert [s.core for s in slacks] == [0, 1]
        assert slacks[1].rt_utilization == 0.0
