"""Unit tests for the admission tests and whole-partition checks."""

from __future__ import annotations

import math

import pytest

from repro.analysis.schedulability import (
    breakdown_utilization,
    get_admission_test,
    hyperbolic_test,
    liu_layland_bound,
    liu_layland_test,
    partition_schedulable,
    rta_test,
    security_schedulable_on_core,
    utilization_test,
)
from repro.model.platform import Platform
from repro.model.system import Partition
from repro.model.task import RealTimeTask, SecurityTask, TaskSet


def rt(name: str, wcet: float, period: float) -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period)


class TestUtilizationBounds:
    def test_liu_layland_bound_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2**0.5 - 1))
        assert liu_layland_bound(1000) == pytest.approx(
            math.log(2), abs=1e-3
        )

    def test_liu_layland_bound_degenerate(self):
        assert liu_layland_bound(0) == 0.0

    def test_liu_layland_test(self):
        assert liu_layland_test([rt("a", 1, 4), rt("b", 1, 4)])
        assert not liu_layland_test([rt("a", 2, 4), rt("b", 2, 4)])

    def test_hyperbolic_dominates_liu_layland(self):
        # An asymmetric set accepted by hyperbolic but rejected by LL:
        # U = (0.6, 0.25) → Π(U+1) = 2.0 ≤ 2 but ΣU = 0.85 > LL(2) ≈ .828.
        tasks = [rt("a", 0.6, 1.0), rt("b", 1.0, 4.0)]
        assert not liu_layland_test(tasks)
        assert hyperbolic_test(tasks)

    def test_hyperbolic_rejects_full_load(self):
        assert not hyperbolic_test([rt("a", 1, 2), rt("b", 1, 2)])

    def test_utilization_test_boundary(self):
        assert utilization_test([rt("a", 5, 10), rt("b", 5, 10)])
        assert not utilization_test([rt("a", 6, 10), rt("b", 5, 10)])


class TestAdmissionRegistry:
    @pytest.mark.parametrize(
        "name", ["rta", "hyperbolic", "liu-layland", "utilization"]
    )
    def test_known_names(self, name):
        test = get_admission_test(name)
        assert callable(test)
        assert test([rt("a", 1, 100)])

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_admission_test("magic")

    def test_tests_ordered_by_permissiveness(self):
        # utilization ⊇ rta ⊇ hyperbolic ⊇ liu-layland on this set.
        tasks = [rt("a", 2, 4), rt("b", 4, 8)]  # harmonic, U = 1.0
        assert utilization_test(tasks)
        assert rta_test(tasks)
        assert not hyperbolic_test(tasks)
        assert not liu_layland_test(tasks)


class TestPartitionSchedulable:
    def test_schedulable_partition(self):
        platform = Platform(2)
        tasks = TaskSet([rt("a", 2, 4), rt("b", 4, 8), rt("c", 1, 4)])
        partition = Partition(platform, tasks, {"a": 0, "b": 0, "c": 1})
        assert partition_schedulable(partition)

    def test_unschedulable_core_detected(self):
        platform = Platform(2)
        tasks = TaskSet([rt("a", 3, 4), rt("b", 3, 6)])
        partition = Partition(platform, tasks, {"a": 0, "b": 0})
        assert not partition_schedulable(partition)
        # Splitting them fixes it.
        partition2 = Partition(platform, tasks, {"a": 0, "b": 1})
        assert partition_schedulable(partition2)


class TestSecuritySchedulableOnCore:
    def test_linear_vs_exact(self):
        rt_tasks = [rt("a", 2, 10)]
        task = SecurityTask(
            name="s", wcet=5.0, period_des=20.0, period_max=200.0
        )
        # Linear bound at T=20: 5 + 2 + 0.2*20 = 11 ≤ 20 → both pass.
        assert security_schedulable_on_core(task, 20.0, rt_tasks)
        assert security_schedulable_on_core(task, 20.0, rt_tasks, exact=True)

    def test_exact_more_permissive_than_linear(self):
        rt_tasks = [rt("a", 4, 10)]
        task = SecurityTask(
            name="s", wcet=5.0, period_des=10.0, period_max=200.0
        )
        # Linear at T=10: 5 + 4 + 0.4*10 = 13 > 10 → fail;
        # exact: R = 5 + ceil(R/10)*4 → 9 ≤ 10 → pass.
        assert not security_schedulable_on_core(task, 10.0, rt_tasks)
        assert security_schedulable_on_core(task, 10.0, rt_tasks, exact=True)

    def test_hp_security_interference_counts(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=10.0, period_max=200.0
        )
        other = SecurityTask(
            name="h", wcet=6.0, period_des=10.0, period_max=100.0
        )
        assert security_schedulable_on_core(task, 12.0, [])
        assert not security_schedulable_on_core(
            task, 12.0, [], hp_security=[(other, 10.0)]
        )


class TestBreakdownUtilization:
    def test_idle_set_is_infinite(self):
        assert breakdown_utilization([]) == math.inf

    def test_harmonic_set_breaks_at_one(self):
        tasks = [rt("a", 1, 4), rt("b", 2, 8)]  # U = 0.5, harmonic
        scale = breakdown_utilization(tasks)
        assert scale == pytest.approx(2.0, rel=1e-2)

    def test_scaling_down_always_schedulable(self):
        tasks = [rt("a", 3, 7), rt("b", 2, 11), rt("c", 1, 13)]
        scale = breakdown_utilization(tasks)
        assert scale >= 1.0  # the set itself is schedulable
