"""Property-based tests for the exact RTA module (hypothesis).

Structural facts the allocators and the batched fast path rely on:

* the fixed point is **monotone** in the analysed task's WCET and in
  the blocking term (more work never responds sooner);
* it does **not** depend on the analysed task's own period — only its
  WCET and the interferer set — which is what lets the exact-RTA
  allocator set the minimal period of a lowest-priority security task
  to ``max(T_des, R)``;
* :func:`core_response_times`'s entry for the lowest-priority task
  equals a direct :func:`response_time` call over all higher-priority
  tasks as interferers.
"""

from __future__ import annotations

import math

import pytest

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.rta import (
    core_response_times,
    core_response_times_batch,
    response_time,
)
from repro.model.task import RealTimeTask

# Interferer sets are drawn with bounded per-task utilisation so most
# draws converge, but overload (→ inf) remains reachable.
_interferer = st.tuples(
    st.floats(min_value=0.05, max_value=30.0),   # wcet
    st.floats(min_value=5.0, max_value=1000.0),  # period
).filter(lambda ct: ct[0] <= ct[1])

_interferer_sets = st.lists(_interferer, min_size=0, max_size=8)
_wcets = st.floats(min_value=0.05, max_value=50.0)


@settings(max_examples=150, deadline=None)
@given(wcet=_wcets, delta=_wcets, interferers=_interferer_sets)
def test_response_monotone_in_wcet(wcet, delta, interferers):
    base = response_time(wcet, interferers)
    grown = response_time(wcet + delta, interferers)
    assert grown >= base - 1e-9


@settings(max_examples=150, deadline=None)
@given(
    wcet=_wcets,
    blocking=st.floats(min_value=0.0, max_value=40.0),
    extra=st.floats(min_value=0.0, max_value=40.0),
    interferers=_interferer_sets,
)
def test_response_monotone_in_blocking(wcet, blocking, extra, interferers):
    base = response_time(wcet, interferers, blocking=blocking)
    grown = response_time(wcet, interferers, blocking=blocking + extra)
    assert grown >= base - 1e-9


@settings(max_examples=150, deadline=None)
@given(
    wcet=st.floats(min_value=0.05, max_value=20.0),
    periods=st.lists(
        st.floats(min_value=20_000.0, max_value=90_000.0),
        min_size=2,
        max_size=5,
        unique=True,
    ),
    interferers=st.lists(_interferer, min_size=1, max_size=6),
)
def test_response_independent_of_own_period(wcet, periods, interferers):
    """Re-periodising the analysed task (keeping it lowest priority)
    never changes its response time under :func:`core_response_times`.

    The candidate periods (≥ 20 000) exceed every interferer period
    (≤ 1000), so the task stays lowest-priority under RM for each of
    them.  Draws whose fixed point exceeds the smallest candidate
    period are discarded — there the *implicit deadline*, not the
    period's role in the recurrence, would (legitimately) differ.
    """
    direct = response_time(wcet, interferers)
    assume(direct <= min(periods))
    higher = [
        RealTimeTask(name=f"hp{i:02d}", wcet=c, period=t)
        for i, (c, t) in enumerate(interferers)
    ]
    responses = set()
    for period in periods:
        tasks = higher + [
            RealTimeTask(name="own", wcet=wcet, period=period)
        ]
        responses.add(core_response_times(tasks)["own"])
    # Exactly one distinct response across all periods, and it matches
    # the direct computation (up to summation-order round-off: the
    # direct call sums interferers in draw order, the core analysis in
    # RM order).
    assert len(responses) == 1
    assert responses.pop() == pytest.approx(direct, rel=1e-12)


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=8.0),
            st.floats(min_value=10.0, max_value=1000.0),
        ).filter(lambda ct: ct[0] <= ct[1]),
        min_size=1,
        max_size=8,
    )
)
def test_lowest_priority_entry_matches_direct_response_time(data):
    tasks = [
        RealTimeTask(name=f"t{i:02d}", wcet=c, period=t)
        for i, (c, t) in enumerate(data)
    ]
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    lowest = ordered[-1]
    per_core = core_response_times(tasks)
    direct = response_time(
        lowest.wcet,
        [(t.wcet, t.period) for t in ordered[:-1]],
        limit=lowest.deadline,
    )
    if math.isinf(direct):
        assert math.isinf(per_core[lowest.name])
    else:
        assert per_core[lowest.name] == direct


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=8.0),
            st.floats(min_value=10.0, max_value=1000.0),
        ).filter(lambda ct: ct[0] <= ct[1]),
        min_size=1,
        max_size=10,
    )
)
def test_batch_agrees_with_scalar_everywhere(data):
    tasks = [
        RealTimeTask(name=f"t{i:02d}", wcet=c, period=t)
        for i, (c, t) in enumerate(data)
    ]
    scalar = core_response_times(tasks)
    batch = core_response_times_batch(tasks)
    for name in scalar:
        if math.isinf(scalar[name]):
            assert math.isinf(batch[name])
        else:
            assert abs(scalar[name] - batch[name]) <= 1e-9
