"""Unit tests for blocking-aware schedulability (§V non-preemptive
security)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.blocking import (
    max_tolerable_blocking,
    rt_schedulable_with_blocking,
)
from repro.model.task import RealTimeTask


def rt(name: str, wcet: float, period: float) -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period)


class TestRtSchedulableWithBlocking:
    def test_zero_blocking_equals_plain_rta(self):
        tasks = [rt("a", 1, 4), rt("b", 2, 6), rt("c", 3, 12)]
        assert rt_schedulable_with_blocking(tasks, 0.0)

    def test_small_blocking_tolerated(self):
        tasks = [rt("a", 1, 4), rt("b", 2, 6)]
        # a: R = 1 + B ≤ 4 → B ≤ 3 at its level; b: R = 2 + B + ceil(R/4)
        # → with B=1: R = 3+ceil/… = 3+1=4 … ≤ 6 OK.
        assert rt_schedulable_with_blocking(tasks, 1.0)

    def test_large_blocking_rejected(self):
        tasks = [rt("a", 1, 4), rt("b", 2, 6)]
        assert not rt_schedulable_with_blocking(tasks, 3.5)

    def test_monotone_in_blocking(self):
        tasks = [rt("a", 2, 7), rt("b", 3, 20)]
        verdicts = [
            rt_schedulable_with_blocking(tasks, b)
            for b in (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)
        ]
        # Once it flips to False it stays False.
        assert verdicts == sorted(verdicts, reverse=True)

    def test_negative_blocking_rejected(self):
        with pytest.raises(ValueError):
            rt_schedulable_with_blocking([rt("a", 1, 4)], -0.5)

    def test_empty_core_always_fine(self):
        assert rt_schedulable_with_blocking([], 1e9)


class TestMaxTolerableBlocking:
    def test_empty_core_infinite(self):
        assert max_tolerable_blocking([]) == math.inf

    def test_single_task_budget_is_slack(self):
        # One task C=2, T=D=10: R = 2 + B ≤ 10 → B* = 8.
        budget = max_tolerable_blocking([rt("a", 2, 10)])
        assert budget == pytest.approx(8.0, abs=1e-4)

    def test_saturated_core_zero_budget(self):
        # Exactly-full harmonic set: any blocking breaks it.
        budget = max_tolerable_blocking([rt("a", 2, 4), rt("b", 4, 8)])
        assert budget == pytest.approx(0.0, abs=1e-4)

    def test_budget_is_achievable_and_tight(self):
        tasks = [rt("a", 1, 5), rt("b", 2, 12), rt("c", 1, 30)]
        budget = max_tolerable_blocking(tasks)
        assert rt_schedulable_with_blocking(tasks, budget - 1e-4)
        assert not rt_schedulable_with_blocking(tasks, budget + 1e-3)

    def test_bounded_by_smallest_deadline(self):
        tasks = [rt("a", 0.1, 5.0), rt("b", 0.1, 100.0)]
        assert max_tolerable_blocking(tasks) <= 5.0 + 1e-9
