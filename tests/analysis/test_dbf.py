"""Unit tests for the demand bound function and the Eq. (1) test."""

from __future__ import annotations

from repro.analysis.dbf import (
    dbf_check_points,
    demand_bound,
    necessary_condition,
    total_demand,
)
from repro.model.platform import Platform
from repro.model.task import RealTimeTask


def rt(wcet: float, period: float, deadline: float | None = None,
       name: str = "t") -> RealTimeTask:
    return RealTimeTask(name=name, wcet=wcet, period=period, deadline=deadline)


class TestDemandBound:
    def test_zero_before_first_deadline(self):
        task = rt(2.0, 10.0)
        assert demand_bound(task, 9.999) == 0.0

    def test_one_job_at_first_deadline(self):
        task = rt(2.0, 10.0)
        assert demand_bound(task, 10.0) == 2.0

    def test_steps_at_each_period(self):
        task = rt(2.0, 10.0)
        assert demand_bound(task, 19.0) == 2.0
        assert demand_bound(task, 20.0) == 4.0
        assert demand_bound(task, 35.0) == 6.0

    def test_constrained_deadline_shifts_steps(self):
        task = rt(2.0, 10.0, deadline=5.0)
        assert demand_bound(task, 4.9) == 0.0
        assert demand_bound(task, 5.0) == 2.0
        assert demand_bound(task, 15.0) == 4.0

    def test_zero_horizon(self):
        assert demand_bound(rt(2.0, 10.0), 0.0) == 0.0
        assert demand_bound(rt(2.0, 10.0), -5.0) == 0.0

    def test_total_demand_sums(self):
        tasks = [rt(2.0, 10.0, name="a"), rt(5.0, 20.0, name="b")]
        assert total_demand(tasks, 20.0) == 2 * 2.0 + 5.0


class TestCheckPoints:
    def test_points_are_deadlines(self):
        task = rt(1.0, 10.0, deadline=7.0)
        points = list(dbf_check_points([task], 40.0))
        assert points == [7.0, 17.0, 27.0, 37.0]

    def test_points_merged_and_sorted(self):
        tasks = [rt(1.0, 10.0, name="a"), rt(1.0, 15.0, name="b")]
        points = list(dbf_check_points(tasks, 30.0))
        assert points == [10.0, 15.0, 20.0, 30.0]

    def test_empty_horizon(self):
        assert list(dbf_check_points([rt(1.0, 10.0)], 5.0)) == []


class TestNecessaryCondition:
    def test_implicit_deadlines_reduce_to_utilization(self):
        # U = 1.5 on 2 cores: passes the necessary condition.
        tasks = [
            rt(5.0, 10.0, name="a"),
            rt(5.0, 10.0, name="b"),
            rt(5.0, 10.0, name="c"),
        ]
        assert necessary_condition(tasks, Platform(2))

    def test_over_utilized_fails(self):
        tasks = [
            rt(8.0, 10.0, name="a"),
            rt(8.0, 10.0, name="b"),
            rt(8.0, 10.0, name="c"),
        ]
        assert not necessary_condition(tasks, Platform(2))

    def test_boundary_utilization_passes(self):
        tasks = [rt(10.0, 10.0, name="a"), rt(10.0, 10.0, name="b")]
        assert necessary_condition(tasks, 2)

    def test_accepts_core_count_int(self):
        assert necessary_condition([rt(1.0, 10.0)], 1)

    def test_constrained_deadline_demand_failure(self):
        # Two tasks, each needing 6 units within a deadline of 6 on one
        # core: DBF(6) = 12 > 6 even though U = 0.6 each (sum 1.2 > 1
        # would fail anyway); use a subtler case with U < capacity.
        tasks = [
            rt(6.0, 20.0, deadline=6.0, name="a"),
            rt(6.0, 20.0, deadline=6.0, name="b"),
        ]
        # U = 0.6 total ≤ 1 core, but 12 units are due by t = 6.
        assert not necessary_condition(tasks, 1)

    def test_constrained_deadline_demand_pass(self):
        tasks = [
            rt(2.0, 20.0, deadline=6.0, name="a"),
            rt(2.0, 20.0, deadline=6.0, name="b"),
        ]
        assert necessary_condition(tasks, 1)

    def test_empty_taskset_passes(self):
        assert necessary_condition([], Platform(1))
