"""Unit tests for hyperperiod utilities."""

from __future__ import annotations

import pytest

from repro.analysis.hyperperiod import hyperperiod, recommended_horizon
from repro.errors import ValidationError


class TestHyperperiod:
    def test_integer_periods(self):
        assert hyperperiod([4.0, 6.0], resolution=1.0) == 12.0

    def test_harmonic_periods(self):
        assert hyperperiod([10.0, 20.0, 40.0], resolution=1.0) == 40.0

    def test_single_period(self):
        assert hyperperiod([7.0], resolution=1.0) == 7.0

    def test_fractional_resolution(self):
        assert hyperperiod([0.4, 0.6], resolution=0.1) == pytest.approx(1.2)

    def test_coprime_periods_blow_up(self):
        assert hyperperiod([7.0, 11.0, 13.0], resolution=1.0) == 1001.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            hyperperiod([])

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValidationError):
            hyperperiod([5.0, 0.0])

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValidationError):
            hyperperiod([5.0], resolution=0.0)

    def test_result_is_multiple_of_each_period(self):
        periods = [12.0, 18.0, 30.0]
        h = hyperperiod(periods, resolution=1.0)
        for p in periods:
            assert (h / p) == pytest.approx(round(h / p))


class TestRecommendedHorizon:
    def test_small_hyperperiod_used_directly(self):
        assert recommended_horizon([4.0, 6.0], resolution=1.0) == 12.0

    def test_capped_for_non_harmonic_sets(self):
        horizon = recommended_horizon(
            [9.7, 11.3, 13.9], resolution=1e-3, cap_factor=100.0
        )
        assert horizon == pytest.approx(1390.0)

    def test_cap_factor_scales(self):
        horizon = recommended_horizon(
            [9.7, 11.3], resolution=1e-3, cap_factor=10.0
        )
        assert horizon == pytest.approx(113.0)
