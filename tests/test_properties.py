"""Cross-module property-based tests (hypothesis).

These pin down the mathematical relationships DESIGN §2 relies on:
closed form ⇔ GP solver agreement, LP optimality vs greedy, exact RTA
dominating the linear bound, feasibility monotonicity, and simulator vs
analysis consistency.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.analysis.rta import response_time
from repro.model.task import SecurityTask
from repro.opt.period import adapt_period, adapt_period_exact
from repro.opt.period_gp import adapt_period_gp

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_wcets = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
_periods = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)


@st.composite
def security_tasks(draw) -> SecurityTask:
    tdes = draw(st.floats(min_value=10.0, max_value=500.0))
    factor = draw(st.floats(min_value=1.0, max_value=20.0))
    wcet = draw(st.floats(min_value=0.1, max_value=tdes))
    return SecurityTask(
        name="s", wcet=wcet, period_des=tdes, period_max=tdes * factor
    )


@st.composite
def environments(draw) -> InterferenceEnv:
    n = draw(st.integers(min_value=0, max_value=5))
    interferers = []
    for _ in range(n):
        period = draw(_periods)
        utilization = draw(st.floats(min_value=0.01, max_value=0.3))
        interferers.append(Interferer(period * utilization, period))
    return InterferenceEnv(interferers)


# --------------------------------------------------------------------------
# Period adaptation properties
# --------------------------------------------------------------------------


class TestPeriodAdaptationProperties:
    @settings(max_examples=120, deadline=None)
    @given(task=security_tasks(), env=environments())
    def test_closed_form_solution_is_feasible_and_minimal(self, task, env):
        solution = adapt_period(task, env)
        if solution is None:
            # Infeasibility must be certified by the constraint itself:
            # even T_max fails Eq. (6) (or the core is saturated).
            if env.utilization < 1.0:
                lhs = task.wcet + env.interference(task.period_max)
                assert lhs > task.period_max - 1e-6
            return
        assert task.period_des - 1e-9 <= solution.period
        assert solution.period <= task.period_max + 1e-9
        lhs = task.wcet + env.interference(solution.period)
        assert lhs <= solution.period + 1e-6
        # Minimality: tightening by 0.1% violates a constraint.
        smaller = solution.period * 0.999
        if smaller >= task.period_des:
            assert task.wcet + env.interference(smaller) > smaller

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(task=security_tasks(), env=environments())
    def test_gp_route_matches_closed_form(self, task, env):
        closed = adapt_period(task, env)
        gp = adapt_period_gp(task, env)
        if closed is None:
            # Skip razor-edge infeasibility (minimum period within one
            # part in 10⁴ of T_max): there the interior-point tolerance
            # legitimately differs from the exact closed form.
            from repro.analysis.interference import min_feasible_period

            lower = min_feasible_period(task, env)
            if lower <= task.period_max * (1.0 + 1e-4):
                return
            assert gp is None
        else:
            assert gp is not None
            assert gp.period == pytest.approx(closed.period, rel=1e-4)

    @settings(max_examples=120, deadline=None)
    @given(task=security_tasks(), env=environments())
    def test_exact_rta_dominates_linear_bound(self, task, env):
        linear = adapt_period(task, env)
        exact = adapt_period_exact(task, env)
        if linear is not None:
            assert exact is not None
            assert exact.period <= linear.period + 1e-9

    @settings(max_examples=120, deadline=None)
    @given(task=security_tasks(), env=environments())
    def test_linear_interference_upper_bounds_exact_demand(self, task, env):
        # (1 + T/Ti)·Ci ≥ ceil(T/Ti)·Ci for every window length T.
        solution = adapt_period(task, env)
        if solution is None:
            return
        t = solution.period
        exact_demand = sum(
            math.ceil(t / i.period) * i.wcet for i in env.interferers
        )
        assert env.interference(t) >= exact_demand - 1e-9


# --------------------------------------------------------------------------
# Joint LP properties
# --------------------------------------------------------------------------


@st.composite
def small_systems(draw):
    from repro.model import Partition, Platform, SystemModel, TaskSet
    from repro.model.task import RealTimeTask

    cores = draw(st.integers(min_value=1, max_value=3))
    platform = Platform(cores)
    rt_tasks = []
    mapping = {}
    for core in range(cores):
        count = draw(st.integers(min_value=0, max_value=2))
        for i in range(count):
            period = draw(st.floats(min_value=5.0, max_value=100.0))
            util = draw(st.floats(min_value=0.05, max_value=0.35))
            name = f"r{core}_{i}"
            rt_tasks.append(
                RealTimeTask(name=name, wcet=period * util, period=period)
            )
            mapping[name] = core
    n_sec = draw(st.integers(min_value=1, max_value=4))
    security = []
    for i in range(n_sec):
        tdes = draw(st.floats(min_value=50.0, max_value=300.0))
        factor = draw(st.floats(min_value=2.0, max_value=10.0))
        util = draw(st.floats(min_value=0.02, max_value=0.3))
        security.append(
            SecurityTask(
                name=f"s{i}",
                wcet=tdes * util,
                period_des=tdes,
                period_max=tdes * factor,
            )
        )
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, TaskSet(rt_tasks), mapping),
        security_tasks=TaskSet(security),
    )


class TestJointOptimisationProperties:
    @settings(max_examples=50, deadline=None)
    @given(system=small_systems(), data=st.data())
    def test_lp_dominates_sequential_greedy(self, system, data):
        from repro.opt.joint import (
            solve_assignment_lp,
            solve_assignment_sequential,
        )

        assignment = {
            name: data.draw(
                st.integers(0, system.platform.num_cores - 1), label=name
            )
            for name in system.security_tasks.names
        }
        lp = solve_assignment_lp(system, assignment)
        seq = solve_assignment_sequential(system, assignment)
        if seq is not None:
            assert lp is not None
            assert lp.tightness >= seq.tightness - 1e-7

    @settings(max_examples=40, deadline=None)
    @given(system=small_systems(), data=st.data())
    def test_feasibility_check_matches_lp(self, system, data):
        from repro.opt.joint import assignment_feasible, solve_assignment_lp

        assignment = {
            name: data.draw(
                st.integers(0, system.platform.num_cores - 1), label=name
            )
            for name in system.security_tasks.names
        }
        fast = assignment_feasible(system, assignment)
        lp = solve_assignment_lp(system, assignment)
        assert fast == (lp is not None)

    @settings(max_examples=25, deadline=None)
    @given(system=small_systems())
    def test_hydra_never_beats_optimal(self, system):
        from repro.core.hydra import HydraAllocator
        from repro.core.optimal import OptimalAllocator

        hydra = HydraAllocator().allocate(system)
        if not hydra.schedulable:
            return
        optimal = OptimalAllocator(search="branch-bound").allocate(system)
        assert optimal.schedulable
        assert optimal.cumulative_tightness() >= (
            hydra.cumulative_tightness() - 1e-7
        )

    @settings(max_examples=25, deadline=None)
    @given(system=small_systems())
    def test_branch_bound_equals_exhaustive(self, system):
        from repro.opt.branch_bound import branch_bound_optimal
        from repro.opt.exhaustive import exhaustive_optimal

        exhaustive = exhaustive_optimal(system)
        bnb, _ = branch_bound_optimal(system)
        if exhaustive is None:
            assert bnb is None
        else:
            assert bnb is not None
            assert bnb.tightness == pytest.approx(
                exhaustive.tightness, abs=1e-6
            )


# --------------------------------------------------------------------------
# RTA vs simulator consistency
# --------------------------------------------------------------------------


class TestAnalysisSimulatorConsistency:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=4),
    )
    def test_synchronous_response_time_matches_rta(self, data, n):
        from repro.sim.engine import SimTask, Simulator

        tasks = []
        total_util = 0.0
        for i in range(n):
            period = data.draw(
                st.floats(min_value=5.0, max_value=100.0), label=f"T{i}"
            )
            util = data.draw(
                st.floats(min_value=0.05, max_value=0.25), label=f"u{i}"
            )
            total_util += util
            tasks.append((period * util, period))
        if total_util >= 0.95:
            return
        tasks.sort(key=lambda ct: ct[1])
        sim_tasks = [
            SimTask(
                name=f"t{i}", wcet=c, period=t, priority=i, core=0
            )
            for i, (c, t) in enumerate(tasks)
        ]
        lowest = sim_tasks[-1]
        expected = response_time(
            lowest.wcet, [(c, t) for c, t in tasks[:-1]]
        )
        horizon = max(expected * 2.0, lowest.period) + 1.0
        result = Simulator(sim_tasks, num_cores=1, duration=horizon).run()
        first = result.completed_jobs_of(lowest.name)
        if first:
            # The synchronous (critical-instant) release gives exactly
            # the analytical worst case for the first job.
            assert first[0].completion == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(system=small_systems())
    def test_no_deadline_misses_for_admitted_allocations(self, system):
        from repro.analysis.schedulability import partition_schedulable
        from repro.core.hydra import HydraAllocator
        from repro.sim.runner import simulate_allocation

        if not partition_schedulable(system.rt_partition):
            return
        allocation = HydraAllocator().allocate(system)
        if not allocation.schedulable:
            return
        horizon = min(
            max(a.period for a in allocation.assignments) * 3.0, 10_000.0
        )
        result = simulate_allocation(system, allocation, duration=horizon)
        assert not result.missed_any_deadline
