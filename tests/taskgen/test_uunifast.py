"""Unit tests for the UUniFast splitters and the box-sum projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.taskgen.uunifast import project_box_sum, uunifast, uunifast_discard


class TestUUniFast:
    def test_rows_sum_to_total(self, rng):
        utils = uunifast(8, 1.3, 200, rng)
        assert utils.shape == (200, 8)
        assert np.allclose(utils.sum(axis=1), 1.3)
        assert (utils >= 0.0).all()

    def test_single_component(self, rng):
        utils = uunifast(1, 0.7, 5, rng)
        assert np.allclose(utils, 0.7)

    def test_components_exchangeable_in_mean(self, rng):
        # every slot should carry total/n on average (no position bias)
        utils = uunifast(4, 1.0, 4000, rng)
        assert np.allclose(utils.mean(axis=0), 0.25, atol=0.02)

    def test_multicore_totals_can_exceed_one_per_component(self):
        # classic UUniFast is unbounded above; with total close to n,
        # over-unity components appear readily
        utils = uunifast(3, 2.8, 500, np.random.default_rng(0))
        assert (utils > 1.0).any()

    def test_invalid_arguments_rejected(self, rng):
        with pytest.raises(ValidationError):
            uunifast(0, 1.0, 1, rng)
        with pytest.raises(ValidationError):
            uunifast(3, -0.1, 1, rng)
        with pytest.raises(ValidationError):
            uunifast(3, 1.0, 0, rng)

    def test_deterministic_for_a_given_stream(self):
        a = uunifast(6, 1.7, 10, np.random.default_rng(9))
        b = uunifast(6, 1.7, 10, np.random.default_rng(9))
        assert (a == b).all()


class TestUUniFastDiscard:
    def test_all_components_admissible(self):
        utils = uunifast_discard(3, 2.5, 300, np.random.default_rng(1))
        assert utils.shape == (300, 3)
        assert (utils <= 1.0 + 1e-12).all()
        assert np.allclose(utils.sum(axis=1), 2.5)

    def test_unreachable_total_rejected(self, rng):
        with pytest.raises(ValidationError, match="unreachable"):
            uunifast_discard(2, 2.5, 1, rng)

    def test_tight_total_terminates_via_projection(self):
        # acceptance collapses as total → n·high; the projection
        # fallback must still return an admissible on-sum matrix
        utils = uunifast_discard(
            4, 3.999, 50, np.random.default_rng(2), max_attempts=2
        )
        assert (utils <= 1.0 + 1e-9).all()
        assert np.allclose(utils.sum(axis=1), 3.999)


class TestProjectBoxSum:
    def test_identity_on_admissible_rows(self):
        rows = np.array([[0.2, 0.3, 0.5], [0.1, 0.1, 0.8]])
        out = project_box_sum(rows, 1.0, low=1e-5, high=1.0)
        assert (out == rows).all()

    def test_clamps_and_restores_sum(self):
        rows = np.array([[1e-9, 0.5, 0.5 - 1e-9]])
        out = project_box_sum(rows, 1.0, low=1e-5, high=1.0)
        assert out.sum() == pytest.approx(1.0, abs=1e-12)
        assert (out >= 1e-5).all()
        assert (out <= 1.0).all()

    def test_overfull_components_pushed_down(self):
        rows = np.array([[1.4, 0.3, 0.3]])
        out = project_box_sum(rows, 2.0, low=0.0, high=1.0)
        assert out.sum() == pytest.approx(2.0, abs=1e-9)
        assert (out <= 1.0 + 1e-12).all()

    def test_degenerate_low_sum_splits_evenly(self):
        out = project_box_sum(np.array([[0.5, 0.5]]), 1e-6, low=1e-5)
        assert np.allclose(out, 5e-7)

    def test_unreachable_sum_rejected(self):
        with pytest.raises(ValidationError, match="unreachable"):
            project_box_sum(np.ones((1, 2)), 2.5, low=0.0, high=1.0)

    def test_invalid_box_rejected(self):
        with pytest.raises(ValidationError, match="low < high"):
            project_box_sum(np.ones((1, 2)), 1.0, low=1.0, high=0.5)
