"""Unit tests for the UAV task set and the Table I security suite."""

from __future__ import annotations

import pytest

from repro.analysis.rta import rta_schedulable
from repro.taskgen.security_apps import (
    TABLE1_SPECS,
    TRIPWIRE_PRECEDENCE,
    table1_security_tasks,
)
from repro.taskgen.uav import UAV_TASK_TABLE, uav_rt_tasks


class TestUavTasks:
    def test_six_tasks_with_expected_roles(self):
        tasks = uav_rt_tasks()
        assert len(tasks) == 6
        assert set(tasks.names) == set(UAV_TASK_TABLE)

    def test_fits_one_core(self):
        # Required so the SingleCore baseline works on a 2-core
        # platform, as in the paper's Fig. 1.
        tasks = list(uav_rt_tasks())
        assert rta_schedulable(tasks)

    def test_moderate_utilization(self):
        total = sum(t.utilization for t in uav_rt_tasks())
        assert 0.4 < total < 0.8

    def test_scale_multiplies_wcets(self):
        base = uav_rt_tasks()
        scaled = uav_rt_tasks(scale=2.0)
        for name in base.names:
            assert scaled[name].wcet == pytest.approx(2.0 * base[name].wcet)
            assert scaled[name].period == base[name].period

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            uav_rt_tasks(scale=0.0)

    def test_rate_hierarchy(self):
        tasks = uav_rt_tasks()
        assert tasks["fast_navigation"].period < (
            tasks["slow_navigation"].period
        )
        assert tasks["controller"].period < tasks["guidance"].period


class TestTable1Suite:
    def test_six_tasks_matching_specs(self):
        tasks = table1_security_tasks()
        assert len(tasks) == 6
        assert set(tasks.names) == {s.name for s in TABLE1_SPECS}

    def test_five_tripwire_one_bro(self):
        apps = [s.application for s in TABLE1_SPECS]
        assert apps.count("tripwire") == 5
        assert apps.count("bro") == 1

    def test_periods_follow_paper_ranges(self):
        for task in table1_security_tasks():
            assert 1000.0 <= task.period_des <= 3000.0
            assert task.period_max == pytest.approx(10.0 * task.period_des)

    def test_distinct_surfaces(self):
        surfaces = [t.surface for t in table1_security_tasks()]
        assert len(set(surfaces)) == 6

    def test_suite_utilization_near_one(self):
        # Chosen so the SingleCore dedicated core must stretch periods
        # (see DESIGN §5); the suite must still fit when slowed to
        # T_max (util/10 ≪ 1).
        total = sum(t.utilization_des for t in table1_security_tasks())
        assert 0.9 < total < 1.4

    def test_wcet_scale(self):
        base = table1_security_tasks()
        scaled = table1_security_tasks(wcet_scale=0.5)
        for name in base.names:
            assert scaled[name].wcet == pytest.approx(0.5 * base[name].wcet)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            table1_security_tasks(wcet_scale=-1.0)

    def test_precedence_names_exist(self):
        names = {s.name for s in TABLE1_SPECS}
        for dependent, preds in TRIPWIRE_PRECEDENCE.items():
            assert dependent in names
            assert all(p in names for p in preds)

    def test_own_binary_checked_first(self):
        # The §V rule: every Tripwire checker depends on tw_own_binary.
        for dependent, preds in TRIPWIRE_PRECEDENCE.items():
            assert "tw_own_binary" in preds

    def test_own_binary_has_highest_priority(self):
        from repro.model.priority import security_priority_order

        ordered = security_priority_order(table1_security_tasks())
        assert ordered[0].name == "tw_own_binary"
