"""Unit tests for the Sec. IV-B synthetic workload recipe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.taskgen.synthetic import (
    _MIN_TASK_UTIL,
    UTILIZATION_SPLITS,
    SyntheticConfig,
    generate_workload,
    generate_workload_batch,
    utilization_sweep,
)


class TestSyntheticConfig:
    def test_paper_defaults(self):
        config = SyntheticConfig()
        assert config.rt_tasks_per_core == (3, 10)
        assert config.security_tasks_per_core == (2, 5)
        assert config.rt_period_range == (10.0, 1000.0)
        assert config.security_period_des_range == (1000.0, 3000.0)
        assert config.period_max_factor == 10.0
        assert config.security_utilization_fraction == 0.3

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(rt_tasks_per_core=(5, 3))
        with pytest.raises(ValidationError):
            SyntheticConfig(rt_period_range=(0.0, 100.0))
        with pytest.raises(ValidationError):
            SyntheticConfig(period_max_factor=0.5)
        with pytest.raises(ValidationError):
            SyntheticConfig(security_utilization_fraction=0.0)
        with pytest.raises(ValidationError):
            SyntheticConfig(security_task_count=(0, 3))


class TestGenerateWorkload:
    def test_task_counts_in_paper_ranges(self, rng):
        for _ in range(10):
            wl = generate_workload(2, 1.0, rng)
            assert 6 <= len(wl.rt_tasks) <= 20
            assert 4 <= len(wl.security_tasks) <= 10

    def test_absolute_count_override(self, rng):
        config = SyntheticConfig(
            rt_task_count=(3, 3), security_task_count=(2, 6)
        )
        for _ in range(10):
            wl = generate_workload(4, 1.0, rng, config)
            assert len(wl.rt_tasks) == 3
            assert 2 <= len(wl.security_tasks) <= 6

    def test_total_utilization_matches_target(self, rng):
        wl = generate_workload(2, 1.3, rng)
        assert wl.total_utilization == pytest.approx(1.3, abs=0.01)

    def test_security_fraction_respected(self, rng):
        wl = generate_workload(2, 1.3, rng)
        assert wl.security_utilization_des <= (
            0.3 * wl.rt_utilization + 0.01
        )

    def test_periods_within_ranges(self, rng):
        wl = generate_workload(2, 1.0, rng)
        for task in wl.rt_tasks:
            assert 10.0 <= task.period <= 1000.0
        for task in wl.security_tasks:
            assert 1000.0 <= task.period_des <= 3000.0
            assert task.period_max == pytest.approx(10.0 * task.period_des)

    def test_all_wcets_positive(self, rng):
        wl = generate_workload(4, 2.0, rng)
        assert all(t.wcet > 0 for t in wl.rt_tasks)
        assert all(t.wcet > 0 for t in wl.security_tasks)

    def test_accepts_platform_or_int(self, rng):
        assert generate_workload(Platform(2), 1.0, rng).platform == Platform(2)
        assert generate_workload(2, 1.0, rng).platform == Platform(2)

    def test_accepts_integer_seed(self):
        a = generate_workload(2, 1.0, 42)
        b = generate_workload(2, 1.0, 42)
        assert a.rt_tasks == b.rt_tasks
        assert a.security_tasks == b.security_tasks

    def test_invalid_utilization_rejected(self, rng):
        with pytest.raises(ValidationError):
            generate_workload(2, 0.0, rng)
        with pytest.raises(ValidationError):
            generate_workload(2, 2.5, rng)

    def test_high_utilization_generates(self, rng):
        wl = generate_workload(8, 7.8, rng)
        assert wl.total_utilization == pytest.approx(7.8, abs=0.05)

    @pytest.mark.parametrize("split", UTILIZATION_SPLITS)
    def test_splits_hit_target_and_stay_admissible(self, rng, split):
        wl = generate_workload(2, 1.3, rng, split=split)
        assert wl.total_utilization == pytest.approx(1.3, rel=1e-6)
        for task in wl.rt_tasks:
            assert task.utilization <= 1.0 + 1e-9

    def test_unknown_split_rejected(self, rng):
        with pytest.raises(ValidationError, match="alchemy"):
            generate_workload(2, 1.0, rng, split="alchemy")


class TestMinUtilFloorRegression:
    """The ``_MIN_TASK_UTIL`` floor must not push the achieved total
    above target at extreme low-U / high-M corners.

    With ``U = 0.025·M`` on ``M = 16`` the recipe spreads ~0.3 of
    real-time utilisation over up to 160 tasks; the raw
    ``maximum(utils, floor)`` clamp used to drift the sum up by as much
    as ``count·1e-5`` here.  The box projection redistributes the
    clamped mass instead, keeping the sum exact.
    """

    def test_extreme_corner_stays_on_target(self):
        m, target = 16, 0.025 * 16
        floored = 0
        for seed in range(40):
            wl = generate_workload(m, target, np.random.default_rng(seed))
            assert wl.total_utilization <= target * (1 + 1e-9) + 1e-12, (
                f"seed {seed}: drifted to {wl.total_utilization}"
            )
            assert wl.total_utilization == pytest.approx(target, rel=1e-6)
            floored += sum(
                1
                for t in wl.rt_tasks
                if t.utilization <= _MIN_TASK_UTIL * (1 + 1e-6)
            )
        # the corner genuinely exercises the clamp, not just misses it
        assert floored > 0

    def test_floor_still_enforced(self):
        m, target = 16, 0.4
        for seed in range(10):
            wl = generate_workload(m, target, np.random.default_rng(seed))
            for task in wl.rt_tasks:
                assert task.wcet > 0.0
                assert task.utilization >= _MIN_TASK_UTIL * (1 - 1e-9)


class TestGenerateWorkloadBatch:
    def test_matches_targets_and_invariants(self):
        targets = [0.3, 0.9, 0.9, 1.5]
        batch = generate_workload_batch(2, targets, 42)
        assert [w.target_utilization for w in batch] == targets
        for wl in batch:
            assert wl.total_utilization == pytest.approx(
                wl.target_utilization, rel=1e-6
            )
            assert 6 <= len(wl.rt_tasks) <= 20
            assert 4 <= len(wl.security_tasks) <= 10
            for task in wl.rt_tasks:
                assert 10.0 <= task.period <= 1000.0
                assert task.wcet > 0.0
            for task in wl.security_tasks:
                assert 1000.0 <= task.period_des <= 3000.0
                assert task.wcet > 0.0

    def test_deterministic_per_stream(self):
        a = generate_workload_batch(2, [0.5, 1.0], 7)
        b = generate_workload_batch(2, [0.5, 1.0], 7)
        assert all(
            x.rt_tasks == y.rt_tasks and x.security_tasks == y.security_tasks
            for x, y in zip(a, b)
        )

    def test_empty_batch(self):
        assert generate_workload_batch(2, [], 1) == []

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError):
            generate_workload_batch(2, [0.5, 2.5], 1)

    @pytest.mark.parametrize("split", UTILIZATION_SPLITS)
    def test_splits_supported(self, split):
        batch = generate_workload_batch(2, [1.3, 1.3], 3, split=split)
        for wl in batch:
            assert wl.total_utilization == pytest.approx(1.3, rel=1e-6)

    def test_config_respected(self):
        config = SyntheticConfig(
            rt_task_count=(3, 3), security_task_count=(2, 2)
        )
        for wl in generate_workload_batch(4, [1.0, 2.0], 5, config):
            assert len(wl.rt_tasks) == 3
            assert len(wl.security_tasks) == 2


class TestUtilizationSweep:
    def test_paper_grid(self):
        points = list(utilization_sweep(2))
        assert len(points) == 39
        assert points[0] == pytest.approx(0.05)
        assert points[-1] == pytest.approx(1.95)

    def test_scales_with_cores(self):
        points = list(utilization_sweep(8))
        assert points[0] == pytest.approx(0.2)
        assert points[-1] == pytest.approx(7.8)

    def test_custom_grid(self):
        points = list(
            utilization_sweep(
                2, step_fraction=0.25, start_fraction=0.25,
                stop_fraction=0.75,
            )
        )
        assert points == pytest.approx([0.5, 1.0, 1.5])

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValidationError):
            list(utilization_sweep(2, start_fraction=0.0))
        with pytest.raises(ValidationError):
            list(
                utilization_sweep(
                    2, start_fraction=0.9, stop_fraction=0.5
                )
            )
