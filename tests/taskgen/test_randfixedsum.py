"""Unit and property tests for Stafford's Randfixedsum."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.taskgen.randfixedsum import randfixedsum, randfixedsum_batch


class TestBasics:
    def test_single_component(self, rng):
        x = randfixedsum(1, 0.7, 3, rng)
        assert x.shape == (3, 1)
        assert np.allclose(x, 0.7)

    def test_shape(self, rng):
        assert randfixedsum(5, 2.0, 7, rng).shape == (7, 5)

    def test_sums_exact(self, rng):
        x = randfixedsum(6, 2.5, 100, rng)
        assert np.allclose(x.sum(axis=1), 2.5)

    def test_unit_bounds_respected(self, rng):
        x = randfixedsum(4, 3.2, 200, rng)
        assert x.min() >= -1e-12
        assert x.max() <= 1.0 + 1e-12

    def test_custom_bounds(self, rng):
        x = randfixedsum(5, 2.0, 100, rng, low=0.1, high=0.6)
        assert np.allclose(x.sum(axis=1), 2.0)
        assert x.min() >= 0.1 - 1e-12
        assert x.max() <= 0.6 + 1e-12

    def test_degenerate_total_at_lower_corner(self, rng):
        x = randfixedsum(3, 0.3, 10, rng, low=0.1, high=0.9)
        assert np.allclose(x, 0.1)

    def test_degenerate_total_at_upper_corner(self, rng):
        x = randfixedsum(3, 3.0, 10, rng)
        assert np.allclose(x, 1.0)

    def test_reproducible_with_seeded_rng(self):
        a = randfixedsum(5, 2.0, 4, np.random.default_rng(3))
        b = randfixedsum(5, 2.0, 4, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_component_means_uniform(self):
        # Exchangeability: each coordinate has mean u/n.
        rng = np.random.default_rng(0)
        x = randfixedsum(4, 2.0, 20_000, rng)
        assert np.allclose(x.mean(axis=0), 0.5, atol=0.01)


class TestValidation:
    def test_unreachable_sum_rejected(self, rng):
        with pytest.raises(ValidationError):
            randfixedsum(3, 3.5, 1, rng)
        with pytest.raises(ValidationError):
            randfixedsum(3, -0.1, 1, rng)

    def test_bad_counts_rejected(self, rng):
        with pytest.raises(ValidationError):
            randfixedsum(0, 0.0, 1, rng)
        with pytest.raises(ValidationError):
            randfixedsum(3, 1.0, 0, rng)

    def test_bad_bounds_rejected(self, rng):
        with pytest.raises(ValidationError):
            randfixedsum(3, 1.0, 1, rng, low=0.5, high=0.5)


class TestBatchKernel:
    """randfixedsum_batch: one table build, many different sums."""

    def test_rows_hit_their_own_totals(self):
        totals = np.linspace(0.05, 7.8, 117)
        rows = randfixedsum_batch(8, totals, np.random.default_rng(3))
        assert rows.shape == (117, 8)
        assert np.allclose(rows.sum(axis=1), totals, atol=1e-9)
        assert rows.min() >= -1e-12
        assert rows.max() <= 1.0 + 1e-12

    def test_single_component(self):
        totals = np.array([0.2, 0.9])
        rows = randfixedsum_batch(1, totals, np.random.default_rng(0))
        assert np.array_equal(rows, totals[:, None])

    def test_affine_bounds(self):
        totals = np.array([1.0, 1.5, 2.0])
        rows = randfixedsum_batch(
            5, totals, np.random.default_rng(1), low=0.1, high=0.6
        )
        assert np.allclose(rows.sum(axis=1), totals, atol=1e-9)
        assert rows.min() >= 0.1 - 1e-12
        assert rows.max() <= 0.6 + 1e-12

    def test_reproducible_with_seeded_rng(self):
        totals = np.array([0.5, 1.3, 2.9])
        a = randfixedsum_batch(6, totals, np.random.default_rng(8))
        b = randfixedsum_batch(6, totals, np.random.default_rng(8))
        assert np.array_equal(a, b)

    def test_distribution_matches_scalar_kernel(self):
        # same (n, u) through both kernels: identical per-component
        # moments (both draw uniformly from the same simplex slice)
        u, n = 1.3, 4
        scalar = randfixedsum(n, u, 6000, np.random.default_rng(1))
        batch = randfixedsum_batch(
            n, np.full(6000, u), np.random.default_rng(2)
        )
        assert np.allclose(scalar.mean(0), batch.mean(0), atol=0.02)
        assert np.allclose(scalar.std(0), batch.std(0), atol=0.02)

    def test_integer_shelf_boundaries(self):
        # sums sitting exactly on integers exercise the k = floor(u)
        # shelf selection for every row independently
        totals = np.array([1.0, 2.0, 3.0, 0.5, 2.5])
        rows = randfixedsum_batch(4, totals, np.random.default_rng(5))
        assert np.allclose(rows.sum(axis=1), totals, atol=1e-9)
        assert rows.max() <= 1.0 + 1e-12

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            randfixedsum_batch(0, np.array([0.5]), rng)
        with pytest.raises(ValidationError):
            randfixedsum_batch(3, np.array([]), rng)
        with pytest.raises(ValidationError, match="unreachable"):
            randfixedsum_batch(3, np.array([1.0, 3.5]), rng)
        with pytest.raises(ValidationError, match="low < high"):
            randfixedsum_batch(3, np.array([1.0]), rng, low=1.0, high=0.5)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_sums_and_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        totals = rng.uniform(0.0, float(n), size=9)
        rows = randfixedsum_batch(n, totals, rng)
        assert np.allclose(rows.sum(axis=1), totals, atol=1e-9)
        assert rows.min() >= -1e-9
        assert rows.max() <= 1.0 + 1e-9


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        frac=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sum_and_bounds_invariant(self, n, frac, seed):
        total = frac * n
        rng = np.random.default_rng(seed)
        x = randfixedsum(n, total, 3, rng)
        assert np.allclose(x.sum(axis=1), total, atol=1e-9)
        assert x.min() >= -1e-9
        assert x.max() <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        frac=st.floats(min_value=0.05, max_value=0.95),
        low=st.floats(min_value=0.0, max_value=0.2),
        span=st.floats(min_value=0.1, max_value=0.8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_affine_bounds_invariant(self, n, frac, low, span, seed):
        high = low + span
        total = n * (low + frac * span)
        rng = np.random.default_rng(seed)
        x = randfixedsum(n, total, 2, rng, low=low, high=high)
        assert np.allclose(x.sum(axis=1), total, atol=1e-9)
        assert x.min() >= low - 1e-9
        assert x.max() <= high + 1e-9
