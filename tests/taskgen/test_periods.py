"""Unit tests for period sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.taskgen.periods import sample_periods


class TestSamplePeriods:
    def test_within_range(self, rng):
        periods = sample_periods(500, 10.0, 1000.0, rng)
        assert periods.min() >= 10.0
        assert periods.max() <= 1000.0

    def test_uniform_distribution_option(self, rng):
        periods = sample_periods(
            2000, 10.0, 1000.0, rng, distribution="uniform"
        )
        assert periods.mean() == pytest.approx(505.0, rel=0.1)

    def test_log_uniform_covers_decades(self, rng):
        periods = sample_periods(2000, 10.0, 1000.0, rng)
        # Log-uniform: about half the mass below sqrt(10*1000) ≈ 100.
        below = float(np.mean(periods < 100.0))
        assert 0.4 < below < 0.6

    def test_zero_count(self, rng):
        assert sample_periods(0, 10.0, 1000.0, rng).shape == (0,)

    def test_harmonic_periods_are_powers_of_two_of_low(self, rng):
        periods = sample_periods(
            500, 10.0, 1000.0, rng, distribution="harmonic"
        )
        ratios = periods / 10.0
        k = np.log2(ratios)
        assert np.allclose(k, np.round(k))
        assert periods.min() >= 10.0
        assert periods.max() <= 1000.0
        # all of 10·2^0 … 10·2^6 are reachable and mutually divide
        assert set(np.unique(ratios)) <= {2.0**i for i in range(7)}

    def test_harmonic_divisibility(self, rng):
        periods = np.sort(
            sample_periods(64, 10.0, 1000.0, rng, distribution="harmonic")
        )
        for small, large in zip(periods, periods[1:]):
            assert large % small == pytest.approx(0.0, abs=1e-9)

    def test_granularity_rounding(self, rng):
        periods = sample_periods(
            200, 10.0, 1000.0, rng, granularity=5.0
        )
        assert np.allclose(periods % 5.0, 0.0)
        assert periods.min() >= 10.0

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_periods(5, 0.0, 100.0, rng)
        with pytest.raises(ValidationError):
            sample_periods(5, 100.0, 10.0, rng)

    def test_invalid_distribution_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_periods(5, 10.0, 100.0, rng, distribution="gamma")

    def test_invalid_granularity_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_periods(5, 10.0, 100.0, rng, granularity=0.0)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_periods(-1, 10.0, 100.0, rng)
