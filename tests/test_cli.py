"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import ExperimentResult, experiment_names


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_accepts_scale_and_seed(self):
        args = build_parser().parse_args(
            ["fig2", "--scale", "smoke", "--seed", "7"]
        )
        assert args.experiment == "fig2"
        assert args.scale == "smoke"
        assert args.seed == 7


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_fig2_smoke(self, capsys):
        assert main(["fig2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_fig3_smoke_with_seed(self, capsys):
        assert main(["fig3", "--scale", "smoke", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_fig1_smoke(self, capsys):
        assert main(["fig1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "mean detection" in out

    def test_quality_smoke(self, capsys):
        assert main(["quality", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Monitoring quality" in out

    def test_csv_export(self, tmp_path, capsys):
        assert main(
            ["fig2", "--scale", "smoke", "--csv", str(tmp_path / "out")]
        ) == 0
        capsys.readouterr()
        csv_file = tmp_path / "out" / "fig2.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().strip().splitlines()
        assert lines[0].startswith("cores,utilization")
        assert len(lines) > 1

    def test_csv_export_table1(self, tmp_path, capsys):
        assert main(["table1", "--csv", str(tmp_path)]) == 0
        capsys.readouterr()
        lines = (tmp_path / "table1.csv").read_text().strip().splitlines()
        assert len(lines) == 7  # header + six security tasks


class TestGeneratedSubcommands:
    def test_every_registered_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in experiment_names():
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_hints_at_list(self, capsys):
        assert main(["fig9"]) == 2
        err = capsys.readouterr().err
        assert "fig9" in err
        assert "repro-hydra list" in err

    def test_option_before_command_is_not_mistaken_for_experiment(
        self, capsys
    ):
        # '--scale smoke fig2' is an argparse usage error now that the
        # command leads, but the value 'smoke' must not be reported as
        # an unknown *experiment*.
        with pytest.raises(SystemExit):
            main(["--scale", "smoke", "fig2"])
        err = capsys.readouterr().err
        assert "unknown experiment 'smoke'" not in err


class TestList:
    def test_text_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out
        assert "sweep --config" in out

    def test_json_lists_specs(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == experiment_names()
        assert all("title" in s and "version" in s for s in specs)

    def test_tag_filters_the_listing(self, capsys):
        assert main(["list", "--tag", "ablation"]) == 0
        out = capsys.readouterr().out
        assert "'ablation'" in out
        assert "ablation-solver" in out
        assert "fig2" not in out

    def test_tag_filters_json_too(self, capsys):
        assert main(["list", "--tag", "paper", "--format", "json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert specs  # the paper experiments exist
        assert all("paper" in s["tags"] for s in specs)

    def test_unknown_tag_lists_nothing(self, capsys):
        assert main(["list", "--tag", "no-such-tag", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestOutputFormats:
    def test_json_to_stdout(self, capsys):
        assert main(["table1", "--format", "json"]) == 0
        result = ExperimentResult.from_json(capsys.readouterr().out)
        assert result.experiment == "table1"
        assert len(result.rows) == 6

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "table1.json"
        assert main(
            ["table1", "--format", "json", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        result = ExperimentResult.from_json(target.read_text())
        assert result.experiment == "table1"

    def test_csv_to_file(self, tmp_path, capsys):
        target = tmp_path / "table1.csv"
        assert main(
            ["table1", "--format", "csv", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("task,application")
        assert len(lines) == 7

    def test_text_to_file_leaves_stdout_quiet(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert capsys.readouterr().out == ""
        assert "Table I" in target.read_text()

    def test_csv_format_rejects_multi_experiment_runs(self, capsys):
        with pytest.raises(SystemExit):
            main(["ablations", "--scale", "smoke", "--format", "csv"])


class TestSweepCommand:
    def _write_config(self, tmp_path, text: str):
        path = tmp_path / "sweep.toml"
        path.write_text(text)
        return str(path)

    def test_happy_path(self, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            """
            [sweep]
            name = "cli-mini"
            tasksets_per_point = 2
            utilization = { start = 0.5, stop = 0.5, step = 0.5 }

            [grid]
            cores = [2]
            heuristic = ["best-fit", "worst-fit"]
            ordering = ["rm"]
            admission = ["rta"]
            """,
        )
        assert main(["sweep", "--config", config, "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "cli-mini" in out
        assert "best-fit/rm/rta" in out
        assert "worst-fit/rm/rta" in out

    def test_requires_config(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_validation_error_is_reported(self, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            """
            [grid]
            cores = [2]
            heuristic = ["magic-fit"]
            ordering = ["rm"]
            admission = ["rta"]
            """,
        )
        with pytest.raises(SystemExit):
            main(["sweep", "--config", config])
        assert "magic-fit" in capsys.readouterr().err

    def test_missing_config_file_is_reported(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--config", str(tmp_path / "absent.toml")])
        assert "cannot read" in capsys.readouterr().err


class TestAblateCommand:
    def _write_config(self, tmp_path, text: str):
        path = tmp_path / "ablate.toml"
        path.write_text(text)
        return str(path)

    _MINI = """
        [ablation]
        name = "cli-ablate"
        axes = ["ordering"]

        [baseline]
        cores = [2]

        [sweep]
        tasksets_per_point = 2
        utilization = { start = 0.5, stop = 0.5, step = 0.5 }
        """

    def test_happy_path_renders_ranked_report(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._MINI)
        assert main(["ablate", "--config", config, "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Ablation 'cli-ablate'" in out
        assert "Importance ranking" in out
        assert "baseline:" in out
        # the two non-incumbent orderings appear as ranked rows
        assert "rm" in out
        assert "input" in out

    def test_axis_filter_overrides_config(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._MINI)
        assert main(
            [
                "ablate", "--config", config, "--scale", "smoke",
                "--axis", "heuristic",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "worst-fit" in out  # heuristic variants ran
        assert "| rm" not in out  # ordering axis filtered away

    def test_csv_format_works_for_single_study(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._MINI)
        assert main(
            [
                "ablate", "--config", config, "--scale", "smoke",
                "--format", "csv",
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("rank,axis,component,run_id")
        assert lines[1].startswith("0,baseline,")

    def test_requires_config(self, capsys):
        with pytest.raises(SystemExit):
            main(["ablate"])

    def test_rejects_unknown_axis_at_parse_time(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._MINI)
        with pytest.raises(SystemExit):
            main(["ablate", "--config", config, "--axis", "bogus"])

    def test_validation_error_is_reported(self, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            """
            [baseline]
            cores = [2]
            heuristic = "magic-fit"
            """,
        )
        with pytest.raises(SystemExit):
            main(["ablate", "--config", config])
        assert "magic-fit" in capsys.readouterr().err

    def test_missing_config_file_is_reported(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["ablate", "--config", str(tmp_path / "absent.toml")])
        assert "cannot read" in capsys.readouterr().err


class TestCacheCommand:
    def _fill_v1(self, directory, n=2):
        from repro.experiments.store import write_v1_entry

        for i in range(n):
            write_v1_entry(
                directory, "demo",
                {"format": 1, "kind": "demo", "index": i},
                {"value": i},
            )

    def test_stats_on_fresh_store(self, tmp_path, capsys):
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "c")]
        ) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out

    def test_stats_reports_pending_v1_without_migrating(
        self, tmp_path, capsys
    ):
        self._fill_v1(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 v1 entries pending migration" in out
        assert not (tmp_path / "store.json").exists()  # stats is read-only

    def test_migrate_ingests_v1(self, tmp_path, capsys):
        self._fill_v1(tmp_path, 3)
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 3 v1 entries" in out
        assert (tmp_path / "store.json").exists()
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 0" in capsys.readouterr().out

    def test_gc_reports_summary(self, tmp_path, capsys):
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        for _ in range(3):
            store.put("demo", {"k": 1}, {"v": 2})
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 live entries" in out
        assert "bytes reclaimed" in out

    def test_stats_never_creates_the_directory(self, tmp_path, capsys):
        target = tmp_path / "typoed-cahce"
        assert main(["cache", "stats", "--cache-dir", str(target)]) == 0
        capsys.readouterr()
        assert not target.exists()  # read-only even on a missing root

    def test_mutating_verbs_refuse_a_missing_directory(
        self, tmp_path, capsys
    ):
        """A typoed --cache-dir must error, not report success on a
        silently created empty store."""
        target = tmp_path / "typoed-cahce"
        for action in ("migrate", "gc"):
            with pytest.raises(SystemExit):
                main(["cache", action, "--cache-dir", str(target)])
            assert "no cache directory" in capsys.readouterr().err
            assert not target.exists()

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "prune"])

    def test_cached_run_writes_v2_store(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(
            ["fig2", "--scale", "smoke", "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert (cache_dir / "store.json").exists()
        assert (cache_dir / "acceptance" / "data.jsonl").exists()

    def test_unusable_cache_dir_fails_before_compute(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(SystemExit):
            main([
                "fig2", "--scale", "smoke",
                "--cache-dir", str(blocker / "c"),
            ])
        assert "unusable" in capsys.readouterr().err


class TestPoolLifecycle:
    def test_run_reaps_the_shared_pool(self, capsys):
        from repro.experiments import pool as pool_module

        assert main(["fig2", "--scale", "smoke", "--workers", "2"]) == 0
        capsys.readouterr()
        assert pool_module._shared_pool is None


class TestScalePrecedence:
    """--scale beats $REPRO_SCALE beats the 'default' fallback."""

    def test_flag_wins_over_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert main(["fig2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scale=smoke" in out

    def test_env_used_without_flag(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "scale=smoke" in out

    def test_bad_env_scale_errors_cleanly(self, capsys, monkeypatch):
        from repro.errors import ValidationError

        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValidationError, match="galactic"):
            main(["fig2"])


class TestAllocatorsCommand:
    def test_text_lists_every_registered_allocator(self, capsys):
        from repro.allocators import allocator_names

        assert main(["allocators"]) == 0
        out = capsys.readouterr().out
        for name in allocator_names():
            assert name in out

    def test_json_lists_specs(self, capsys):
        from repro.allocators import allocator_names

        assert main(["allocators", "--format", "json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == allocator_names()
        assert all("title" in s and "tags" in s for s in specs)

    def test_describe_one(self, capsys):
        assert main(["allocators", "optimal[branch-bound]"]) == 0
        out = capsys.readouterr().out
        assert "optimal[branch-bound]" in out
        assert "branch-and-bound" in out.lower()

    def test_unknown_name_errors_with_known_list(self, capsys):
        with pytest.raises(SystemExit):
            main(["allocators", "quantum"])
        err = capsys.readouterr().err
        assert "quantum" in err and "hydra" in err

    def test_list_shows_descriptions(self, capsys):
        from repro.experiments.registry import iter_experiments

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment in iter_experiments():
            spec = experiment.spec()
            blurb = (spec.description or spec.title).splitlines()[0]
            assert blurb[:40] in out
        assert "allocators" in out  # the meta-command hint


class TestWorkloadsCommand:
    def test_text_lists_every_registered_workload(self, capsys):
        from repro.workloads import workload_names

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in workload_names():
            assert name in out

    def test_json_lists_specs(self, capsys):
        from repro.workloads import workload_names

        assert main(["workloads", "--format", "json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == workload_names()
        assert all("title" in s and "tags" in s for s in specs)

    def test_describe_one(self, capsys):
        assert main(["workloads", "uunifast-discard"]) == 0
        out = capsys.readouterr().out
        assert "uunifast-discard" in out
        assert "resampled" in out.lower()

    def test_describe_one_json(self, capsys):
        assert main(["workloads", "heavy-security", "--format", "json"]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["name"] == "heavy-security"
        assert "profile" in spec["tags"]

    def test_unknown_name_errors_with_known_list(self, capsys):
        with pytest.raises(SystemExit):
            main(["workloads", "fractal"])
        err = capsys.readouterr().err
        assert "fractal" in err and "paper-synthetic" in err

    def test_list_mentions_workloads_meta_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workloads" in out  # the meta-command hint


class TestSweepWorkloadOverride:
    def _write_config(self, tmp_path, text: str):
        path = tmp_path / "sweep.toml"
        path.write_text(text)
        return str(path)

    _CONFIG = """
    [sweep]
    name = "wl-mini"
    tasksets_per_point = 2
    utilization = { start = 0.5, stop = 0.5, step = 0.5 }

    [grid]
    cores = [2]
    heuristic = ["best-fit"]
    ordering = ["rm"]
    admission = ["rta"]
    """

    def test_workload_flag_adds_the_axis(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._CONFIG)
        assert main([
            "sweep", "--config", config, "--scale", "smoke",
            "--workload", "paper-synthetic", "--workload", "uunifast",
        ]) == 0
        out = capsys.readouterr().out
        assert "paper-synthetic::best-fit/rm/rta" in out
        assert "uunifast::best-fit/rm/rta" in out

    def test_unknown_workload_flag_errors_cleanly(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._CONFIG)
        with pytest.raises(SystemExit):
            main([
                "sweep", "--config", config, "--workload", "fractal",
            ])
        err = capsys.readouterr().err
        assert "fractal" in err and "known workloads" in err

    def test_workload_axis_in_toml(self, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            self._CONFIG.replace(
                'admission = ["rta"]',
                'admission = ["rta"]\n    workload = ["harmonic-periods"]',
            ),
        )
        assert main(["sweep", "--config", config, "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "harmonic-periods::best-fit/rm/rta" in out

    def test_workload_and_allocator_flags_compose(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._CONFIG)
        assert main([
            "sweep", "--config", config, "--scale", "smoke",
            "--workload", "table1-suite", "--allocator", "binpack-first-fit",
        ]) == 0
        out = capsys.readouterr().out
        assert "table1-suite::binpack-first-fit|best-fit/rm/rta" in out


class TestSweepAllocatorOverride:
    def _write_config(self, tmp_path, text: str):
        path = tmp_path / "sweep.toml"
        path.write_text(text)
        return str(path)

    _CONFIG = """
    [sweep]
    name = "alloc-mini"
    tasksets_per_point = 2
    utilization = { start = 0.5, stop = 0.5, step = 0.5 }

    [grid]
    cores = [2]
    heuristic = ["best-fit"]
    ordering = ["rm"]
    admission = ["rta"]
    """

    def test_allocator_flag_adds_the_axis(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._CONFIG)
        assert main([
            "sweep", "--config", config, "--scale", "smoke",
            "--allocator", "hydra", "--allocator", "binpack-first-fit",
        ]) == 0
        out = capsys.readouterr().out
        assert "hydra|best-fit/rm/rta" in out
        assert "binpack-first-fit|best-fit/rm/rta" in out

    def test_unknown_allocator_flag_errors_cleanly(self, tmp_path, capsys):
        config = self._write_config(tmp_path, self._CONFIG)
        with pytest.raises(SystemExit):
            main([
                "sweep", "--config", config, "--allocator", "quantum",
            ])
        err = capsys.readouterr().err
        assert "quantum" in err and "known allocators" in err

    def test_allocator_axis_in_toml(self, tmp_path, capsys):
        config = self._write_config(
            tmp_path,
            self._CONFIG.replace(
                'admission = ["rta"]',
                'admission = ["rta"]\n    allocator = ["slackiest-core"]',
            ),
        )
        assert main(["sweep", "--config", config, "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "slackiest-core|best-fit/rm/rta" in out


class TestTypedErrorsAndWorkersValidation:
    """Runtime failures exit 1 with one typed line; bad ``--workers``
    values are rejected by argparse (exit 2) before anything runs."""

    _CONFIG = """
    [sweep]
    name = "err-mini"
    tasksets_per_point = 2
    utilization = { start = 0.5, stop = 0.5, step = 0.5 }

    [grid]
    cores = [2]
    heuristic = ["best-fit"]
    ordering = ["rm"]
    admission = ["rta"]
    """

    def _write_config(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(self._CONFIG)
        return str(path)

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_workers_below_one_rejected_at_parse_time(
        self, value, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig2", "--scale", "smoke", "--workers", value])
        assert excinfo.value.code == 2  # argparse usage error
        assert "positive worker count" in capsys.readouterr().err

    def test_workers_non_integer_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig2", "--scale", "smoke", "--workers", "many"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err

    def test_serve_validates_workers_too(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "positive worker count" in capsys.readouterr().err

    def test_serve_bind_failure_is_one_typed_line_exit_1(
        self, tmp_path, capsys
    ):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            with pytest.raises(SystemExit) as excinfo:
                main([
                    "serve", "--host", "127.0.0.1",
                    "--port", str(port),
                    "--cache-dir", str(tmp_path / "cache"),
                ])
            assert excinfo.value.code == 1
            err = capsys.readouterr().err
            assert "Traceback" not in err
            # The startup banner precedes the failure; the typed
            # one-liner is the last thing on stderr.
            assert err.strip().splitlines()[-1].startswith(
                "repro-hydra: OSError:"
            )
        finally:
            blocker.close()

    def test_unknown_allocator_is_one_typed_line_exit_1(
        self, tmp_path, capsys
    ):
        config = self._write_config(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--config", config, "--allocator", "quantum"])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: UnknownAllocatorError:")
        assert "quantum" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_unknown_workload_is_one_typed_line_exit_1(
        self, tmp_path, capsys
    ):
        config = self._write_config(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--config", config, "--workload", "fractal"])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: UnknownWorkloadError:")
        assert "Traceback" not in err

    def test_unusable_cache_dir_is_a_typed_cache_error(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the store root should be")
        with pytest.raises(SystemExit) as excinfo:
            main([
                "table1", "--cache-dir", str(blocker),
            ])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: CacheError:")
        assert "Traceback" not in err

    def test_unknown_allocator_describe_is_typed(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["allocators", "no-such-strategy"])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: ")
        assert "no-such-strategy" in err

    def test_cache_verb_on_missing_dir_is_typed(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "cache", "gc",
                "--cache-dir", str(tmp_path / "absent"),
            ])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: ValidationError:")
        assert "no cache directory" in err


class TestExecutorsCommand:
    def test_text_lists_every_registered_executor(self, capsys):
        from repro.executors import executor_names

        assert main(["executors"]) == 0
        out = capsys.readouterr().out
        for name in executor_names():
            assert name in out

    def test_json_lists_specs(self, capsys):
        from repro.executors import executor_names

        assert main(["executors", "--format", "json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == executor_names()
        assert all("title" in s and "tags" in s for s in specs)

    def test_describe_one(self, capsys):
        assert main(["executors", "subprocess-workers"]) == 0
        out = capsys.readouterr().out
        assert "subprocess-workers" in out
        assert "heartbeat" in out.lower()

    def test_unknown_name_errors_with_known_list(self, capsys):
        with pytest.raises(SystemExit):
            main(["executors", "warp-drive"])
        err = capsys.readouterr().err
        assert "warp-drive" in err and "serial" in err

    def test_list_mentions_executors_meta_command(self, capsys):
        assert main(["list"]) == 0
        assert "executors" in capsys.readouterr().out


class TestExecutorFlag:
    def test_run_with_serial_backend(self, capsys):
        assert main(
            ["fig2", "--scale", "smoke", "--executor", "serial"]
        ) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_sweep_backends_are_byte_identical(self, tmp_path, capsys):
        config = tmp_path / "sweep.toml"
        config.write_text(
            '[sweep]\n'
            'name = "exec-cli-mini"\n'
            'tasksets_per_point = 2\n'
            'utilization = { start = 0.5, stop = 1.0, step = 0.5 }\n'
            '[grid]\n'
            'cores = [2]\n'
            'heuristic = ["best-fit"]\n'
            'ordering = ["rm"]\n'
            'admission = ["rta"]\n'
        )
        runs = {}
        for backend in ("serial", "subprocess-workers"):
            assert main([
                "sweep", "--config", str(config), "--scale", "smoke",
                "--format", "json", "--executor", backend,
                "--workers", "2",
            ]) == 0
            runs[backend] = capsys.readouterr().out
        assert runs["serial"] == runs["subprocess-workers"]

    def test_unknown_executor_is_one_typed_line_exit_1(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "fig2", "--scale", "smoke", "--executor", "warp-drive",
            ])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-hydra: ")
        assert "unknown executor" in err
        assert "Traceback" not in err

    def test_serve_validates_executor_upfront(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--executor", "warp-drive", "--port", "0"])
        assert excinfo.value.code == 1
        assert "unknown executor" in capsys.readouterr().err


class TestCacheSegmentReporting:
    def _fill_segments(self, root):
        from repro.experiments.store import ResultStore

        primary = ResultStore(root)
        primary.put("demo", {"k": 0}, {"v": 0})
        writer = ResultStore(root, writer_id="serve123")
        writer.put("demo", {"k": 1}, {"v": 1})
        writer.put("demo", {"k": 2}, {"v": 2})

    def test_stats_report_writer_segments(self, tmp_path, capsys):
        self._fill_segments(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "writer serve123" in out
        assert "1 writer segment file(s)" in out
        assert "cache gc" in out  # points at the merge verb

    def test_gc_reports_the_merge_and_unifies_the_log(
        self, tmp_path, capsys
    ):
        self._fill_segments(tmp_path)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "merged 1 writer segment(s) (2 entries)" in out
        assert "3 live entries" in out
        assert not list((tmp_path / "demo").glob("data.*.jsonl"))

        # A second gc has nothing to merge and stays quiet about it.
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "merged" not in out
        assert "3 live entries" in out
