"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_accepts_scale_and_seed(self):
        args = build_parser().parse_args(
            ["fig2", "--scale", "smoke", "--seed", "7"]
        )
        assert args.experiment == "fig2"
        assert args.scale == "smoke"
        assert args.seed == 7


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_fig2_smoke(self, capsys):
        assert main(["fig2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_fig3_smoke_with_seed(self, capsys):
        assert main(["fig3", "--scale", "smoke", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_fig1_smoke(self, capsys):
        assert main(["fig1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "mean detection" in out

    def test_quality_smoke(self, capsys):
        assert main(["quality", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Monitoring quality" in out

    def test_csv_export(self, tmp_path, capsys):
        assert main(
            ["fig2", "--scale", "smoke", "--csv", str(tmp_path / "out")]
        ) == 0
        capsys.readouterr()
        csv_file = tmp_path / "out" / "fig2.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().strip().splitlines()
        assert lines[0].startswith("cores,utilization")
        assert len(lines) > 1

    def test_csv_export_table1(self, tmp_path, capsys):
        assert main(["table1", "--csv", str(tmp_path)]) == 0
        capsys.readouterr()
        lines = (tmp_path / "table1.csv").read_text().strip().splitlines()
        assert len(lines) == 7  # header + six security tasks
