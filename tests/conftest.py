"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.pool import shutdown_shared_pool
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)


@pytest.fixture(scope="session", autouse=True)
def _reap_shared_pool():
    """One worker pool serves the whole pytest session (engines with
    ``workers > 1`` attach to it lazily); reap it at session end."""
    yield
    shutdown_shared_pool()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rt_pair() -> TaskSet:
    """Two real-time tasks with comfortable slack."""
    return TaskSet(
        [
            RealTimeTask(name="rt_fast", wcet=1.0, period=10.0),
            RealTimeTask(name="rt_slow", wcet=10.0, period=100.0),
        ]
    )


@pytest.fixture
def security_pair() -> TaskSet:
    """Two security tasks with distinct priorities (by T_max)."""
    return TaskSet(
        [
            SecurityTask(
                name="sec_hi", wcet=5.0, period_des=100.0, period_max=500.0
            ),
            SecurityTask(
                name="sec_lo", wcet=8.0, period_des=150.0, period_max=900.0
            ),
        ]
    )


@pytest.fixture
def two_core_system(rt_pair, security_pair) -> SystemModel:
    """A 2-core system: both RT tasks on core 0, core 1 empty."""
    platform = Platform(2)
    partition = Partition(
        platform, rt_pair, {"rt_fast": 0, "rt_slow": 0}
    )
    return SystemModel(
        platform=platform,
        rt_partition=partition,
        security_tasks=security_pair,
    )


@pytest.fixture
def loaded_system() -> SystemModel:
    """A 2-core system with real load on both cores and three security
    tasks, tight enough that periods stretch beyond T_des."""
    platform = Platform(2)
    rt = TaskSet(
        [
            RealTimeTask(name="r0", wcet=4.0, period=10.0),  # u = .4
            RealTimeTask(name="r1", wcet=30.0, period=100.0),  # u = .3
            RealTimeTask(name="r2", wcet=5.0, period=20.0),  # u = .25
            RealTimeTask(name="r3", wcet=45.0, period=150.0),  # u = .3
        ]
    )
    partition = Partition(
        platform, rt, {"r0": 0, "r1": 0, "r2": 1, "r3": 1}
    )
    security = TaskSet(
        [
            SecurityTask(
                name="s0", wcet=20.0, period_des=200.0, period_max=2000.0
            ),
            SecurityTask(
                name="s1", wcet=30.0, period_des=300.0, period_max=3000.0
            ),
            SecurityTask(
                name="s2", wcet=40.0, period_des=400.0, period_max=4000.0
            ),
        ]
    )
    return SystemModel(
        platform=platform, rt_partition=partition, security_tasks=security
    )
