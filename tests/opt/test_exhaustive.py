"""Unit tests for the exhaustive optimal search."""

from __future__ import annotations

import itertools

import pytest

from repro.opt.exhaustive import exhaustive_optimal
from repro.opt.joint import solve_assignment_lp


class TestExhaustiveOptimal:
    def test_finds_a_solution(self, loaded_system):
        result = exhaustive_optimal(loaded_system)
        assert result is not None
        assert set(result.assignment) == set(
            loaded_system.security_tasks.names
        )

    def test_optimum_dominates_every_assignment(self, loaded_system):
        result = exhaustive_optimal(loaded_system)
        assert result is not None
        names = list(loaded_system.security_tasks.names)
        for combo in itertools.product([0, 1], repeat=len(names)):
            assignment = dict(zip(names, combo))
            solution = solve_assignment_lp(loaded_system, assignment)
            if solution is not None:
                assert result.tightness >= solution.tightness - 1e-9

    def test_pruning_is_lossless(self, loaded_system):
        pruned = exhaustive_optimal(loaded_system, prune=True)
        unpruned = exhaustive_optimal(loaded_system, prune=False)
        assert pruned is not None and unpruned is not None
        assert pruned.tightness == pytest.approx(unpruned.tightness)

    def test_relaxed_system_reaches_full_tightness(self, two_core_system):
        result = exhaustive_optimal(two_core_system)
        assert result is not None
        assert result.tightness == pytest.approx(
            len(two_core_system.security_tasks), rel=1e-6
        )

    def test_explored_counts(self, two_core_system):
        result = exhaustive_optimal(two_core_system, prune=False)
        assert result is not None
        # 2 tasks on 2 cores → 4 assignments, all feasible here.
        assert result.explored == 4
        assert result.pruned == 0

    def test_infeasible_system_returns_none(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import SecurityTask, TaskSet

        impossible = TaskSet(
            [
                SecurityTask(
                    name="x", wcet=90.0, period_des=100.0, period_max=101.0
                ),
            ]
        )
        system = replace(
            loaded_system, security_tasks=impossible, weights={}
        )
        # Core 0 (u=.7) and core 1 (u=.55) both leave < 90% needed.
        assert exhaustive_optimal(system) is None

    def test_scipy_backend_agrees(self, loaded_system):
        ours = exhaustive_optimal(loaded_system)
        scipy_result = exhaustive_optimal(loaded_system, backend="scipy")
        assert ours is not None and scipy_result is not None
        assert ours.tightness == pytest.approx(
            scipy_result.tightness, rel=1e-6
        )
