"""Parity of the three optimal-search routes.

The OPT baseline can be computed three ways — exhaustive enumeration
(``repro.opt.exhaustive``), branch-and-bound (``repro.opt.branch_bound``)
and a direct per-assignment LP enumeration (``repro.opt.joint``, no
search wrapper at all).  On any instance they must agree on the optimal
cumulative tightness; one non-trivial instance (optimum splits the
cores, tightness < NS) is pinned as a golden fixture.
"""

from __future__ import annotations

import itertools
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.allocators import run_allocator
from repro.experiments.runner import build_hydra_system
from repro.io import system_from_dict
from repro.model.priority import security_priority_order
from repro.opt.branch_bound import branch_bound_optimal
from repro.opt.exhaustive import exhaustive_optimal
from repro.opt.joint import solve_assignment_lp
from repro.taskgen.synthetic import SyntheticConfig, generate_workload

FIXTURE = Path(__file__).parent / "golden" / "parity_small.json"


def _brute_force_lp_optimum(system):
    """Max tightness over every assignment, solved purely by the LP."""
    ordered = [t.name for t in security_priority_order(system.security_tasks)]
    cores = list(system.platform.cores())
    best = None
    for combo in itertools.product(cores, repeat=len(ordered)):
        solution = solve_assignment_lp(system, dict(zip(ordered, combo)))
        if solution is not None and (
            best is None or solution.tightness > best.tightness
        ):
            best = solution
    return best


def _small_systems(count: int = 6):
    """Generated ≤6-security-task, 2-core instances (fixed seeds)."""
    rng = np.random.default_rng(20180319)
    config = SyntheticConfig(security_task_count=(2, 6))
    systems = []
    while len(systems) < count:
        workload = generate_workload(2, 1.1, rng, config)
        system = build_hydra_system(workload)
        if system is not None:
            systems.append(system)
    return systems


class TestParity:
    def test_three_routes_agree_on_generated_instances(self):
        compared = 0
        for system in _small_systems():
            exhaustive = exhaustive_optimal(system, prune=False)
            bnb, _ = branch_bound_optimal(system)
            brute = _brute_force_lp_optimum(system)
            if exhaustive is None:
                assert bnb is None and brute is None
                continue
            compared += 1
            assert bnb is not None and brute is not None
            assert exhaustive.tightness == pytest.approx(
                bnb.tightness, abs=1e-6
            )
            assert exhaustive.tightness == pytest.approx(
                brute.tightness, abs=1e-6
            )
        assert compared >= 3  # the seeds must exercise real instances

    def test_registry_optimal_specs_agree(self):
        (system, *_rest) = _small_systems(1)
        exhaustive = run_allocator("optimal", system)
        bnb = run_allocator("optimal[branch-bound]", system)
        assert exhaustive.schedulable == bnb.schedulable
        if exhaustive.schedulable:
            assert exhaustive.cumulative_tightness() == pytest.approx(
                bnb.cumulative_tightness(), abs=1e-6
            )


class TestGoldenFixture:
    def test_pinned_instance_reproduces(self):
        document = json.loads(FIXTURE.read_text())
        system = system_from_dict(document["system"])
        expected = document["optimal"]

        exhaustive = exhaustive_optimal(system, prune=False)
        bnb, _ = branch_bound_optimal(system)
        brute = _brute_force_lp_optimum(system)

        for label, result in (
            ("exhaustive", exhaustive),
            ("branch-bound", bnb),
            ("brute-LP", brute),
        ):
            assert result is not None, label
            assert result.tightness == pytest.approx(
                expected["tightness"], abs=1e-9
            ), label
        assert exhaustive.assignment == {
            name: int(core) for name, core in expected["assignment"].items()
        }
        for name, period in expected["periods"].items():
            assert math.isclose(
                exhaustive.periods[name], period, rel_tol=1e-9
            ), name

    def test_pinned_instance_is_nontrivial(self):
        document = json.loads(FIXTURE.read_text())
        expected = document["optimal"]
        # The optimum must exercise both the core choice and the period
        # trade-off, or the parity check proves nothing.
        assert len(set(expected["assignment"].values())) > 1
        assert expected["tightness"] < len(expected["periods"]) - 1e-6
