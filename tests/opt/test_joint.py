"""Unit tests for the joint per-assignment optimisation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.opt.joint import (
    assignment_feasible,
    solve_assignment_lp,
    solve_assignment_sequential,
)


def all_on(system, core: int) -> dict[str, int]:
    return {name: core for name in system.security_tasks.names}


class TestAssignmentFeasible:
    def test_empty_core_feasible(self, two_core_system):
        assert assignment_feasible(
            two_core_system, all_on(two_core_system, 1)
        )

    def test_loaded_assignment(self, loaded_system):
        assert assignment_feasible(loaded_system, all_on(loaded_system, 0))

    def test_incomplete_assignment_rejected(self, two_core_system):
        with pytest.raises(ValidationError):
            assignment_feasible(two_core_system, {"sec_hi": 0})

    def test_unknown_core_rejected(self, two_core_system):
        with pytest.raises(ValidationError):
            assignment_feasible(
                two_core_system, {"sec_hi": 0, "sec_lo": 5}
            )

    def test_matches_lp_feasibility(self, loaded_system):
        # The fast check must agree with the LP on every assignment of
        # this 2-core, 3-task system.
        import itertools

        names = list(loaded_system.security_tasks.names)
        for combo in itertools.product([0, 1], repeat=len(names)):
            assignment = dict(zip(names, combo))
            fast = assignment_feasible(loaded_system, assignment)
            lp = solve_assignment_lp(loaded_system, assignment) is not None
            assert fast == lp, assignment


class TestSolveAssignmentLp:
    def test_relaxed_system_hits_desired_periods(self, two_core_system):
        solution = solve_assignment_lp(
            two_core_system, all_on(two_core_system, 1)
        )
        assert solution is not None
        for name, period in solution.periods.items():
            task = two_core_system.security_tasks[name]
            assert period == pytest.approx(task.period_des, rel=1e-6)
        assert solution.tightness == pytest.approx(2.0, rel=1e-6)

    def test_periods_respect_bounds(self, loaded_system):
        solution = solve_assignment_lp(loaded_system, all_on(loaded_system, 0))
        assert solution is not None
        for name, period in solution.periods.items():
            task = loaded_system.security_tasks[name]
            assert task.period_des - 1e-6 <= period
            assert period <= task.period_max + 1e-6

    def test_schedulability_constraints_hold(self, loaded_system):
        from repro.analysis.interference import InterferenceEnv
        from repro.model.priority import security_priority_order

        assignment = all_on(loaded_system, 0)
        solution = solve_assignment_lp(loaded_system, assignment)
        assert solution is not None
        placed = []
        for task in security_priority_order(loaded_system.security_tasks):
            env = InterferenceEnv.on_core(
                loaded_system.rt_partition.tasks_on(0), placed
            )
            period = solution.periods[task.name]
            assert task.wcet + env.interference(period) <= period + 1e-6
            placed.append((task, period))

    def test_weights_steer_the_optimum(self, loaded_system):
        from dataclasses import replace

        assignment = all_on(loaded_system, 0)
        base = solve_assignment_lp(loaded_system, assignment)
        weighted_system = replace(
            loaded_system, weights={"s2": 100.0}
        )
        weighted = solve_assignment_lp(weighted_system, assignment)
        assert base is not None and weighted is not None
        # Heavy weight on the lowest-priority task pulls its period down
        # (or keeps it equal if already minimal).
        assert weighted.periods["s2"] <= base.periods["s2"] + 1e-9

    def test_lp_at_least_as_good_as_sequential(self, loaded_system):
        assignment = all_on(loaded_system, 0)
        lp = solve_assignment_lp(loaded_system, assignment)
        seq = solve_assignment_sequential(loaded_system, assignment)
        assert lp is not None and seq is not None
        assert lp.tightness >= seq.tightness - 1e-9

    def test_infeasible_returns_none(self, loaded_system):
        # Shrink T_max so far that core 0's RT load cannot fit anything.
        from repro.model.task import SecurityTask, TaskSet
        from dataclasses import replace

        tight = TaskSet(
            [
                SecurityTask(
                    name="impossible",
                    wcet=50.0,
                    period_des=60.0,
                    period_max=65.0,
                )
            ]
        )
        system = replace(loaded_system, security_tasks=tight, weights={})
        assert solve_assignment_lp(system, {"impossible": 0}) is None

    def test_empty_security_set(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import TaskSet

        system = replace(loaded_system, security_tasks=TaskSet(), weights={})
        solution = solve_assignment_lp(system, {})
        assert solution is not None
        assert solution.tightness == 0.0

    def test_scipy_backend_agrees(self, loaded_system):
        assignment = all_on(loaded_system, 0)
        ours = solve_assignment_lp(loaded_system, assignment)
        scipy_solution = solve_assignment_lp(
            loaded_system, assignment, backend="scipy"
        )
        assert ours is not None and scipy_solution is not None
        assert ours.tightness == pytest.approx(
            scipy_solution.tightness, rel=1e-6
        )


class TestSolveAssignmentSequential:
    def test_matches_singlecore_semantics(self, two_core_system):
        solution = solve_assignment_sequential(
            two_core_system, all_on(two_core_system, 1)
        )
        assert solution is not None
        assert solution.tightness == pytest.approx(2.0)

    def test_exact_mode_at_least_as_tight(self, loaded_system):
        assignment = all_on(loaded_system, 0)
        linear = solve_assignment_sequential(loaded_system, assignment)
        exact = solve_assignment_sequential(
            loaded_system, assignment, exact=True
        )
        assert linear is not None and exact is not None
        assert exact.tightness >= linear.tightness - 1e-9

    def test_greedy_can_reject_lp_feasible_assignment(self):
        """The documented lexicographic-greedy pathology.

        The high-priority task grabs its minimal period, starving the
        low-priority one; the LP balances the two and stays feasible.
        """
        from repro.model import (
            Partition,
            Platform,
            SecurityTask,
            SystemModel,
            TaskSet,
        )

        platform = Platform(1)
        partition = Partition(platform, TaskSet(), {})
        # Priority is by T_max ascending, so "hi" (T_max = 3.0) precedes
        # "lo" (T_max = 3.9).
        security = TaskSet(
            [
                SecurityTask(
                    name="hi", wcet=1.0, period_des=2.0, period_max=3.0
                ),
                SecurityTask(
                    name="lo", wcet=1.0, period_des=2.0, period_max=3.9
                ),
            ]
        )
        system = SystemModel(
            platform=platform, rt_partition=partition,
            security_tasks=security,
        )
        assignment = {"hi": 0, "lo": 0}
        # Greedy: hi takes T=2 (util .5) → lo needs 2/(1-.5) = 4 > 3.9.
        assert solve_assignment_sequential(system, assignment) is None
        # LP: hi at 3 (util 1/3) → lo at 2·3/(3−1−… ) ≈ 3.85 ≤ 3.9.
        assert solve_assignment_lp(system, assignment) is not None
