"""Unit tests for the two-phase simplex LP solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.opt.lp import solve_lp


class TestBasics:
    def test_trivial_bound_optimum(self):
        # min x, x ≥ 0 → 0.
        result = solve_lp([1.0])
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)

    def test_maximize_via_negation(self):
        # max x s.t. x ≤ 5 → min −x.
        result = solve_lp([-1.0], a_ub=[[1.0]], b_ub=[5.0])
        assert result.x[0] == pytest.approx(5.0)
        assert result.objective == pytest.approx(-5.0)

    def test_two_variable_vertex(self):
        # min −x − 2y s.t. x + y ≤ 4, x ≤ 2 → (0, 4), value −8.
        result = solve_lp(
            [-1.0, -2.0],
            a_ub=[[1.0, 1.0], [1.0, 0.0]],
            b_ub=[4.0, 2.0],
        )
        assert result.x == pytest.approx([0.0, 4.0])
        assert result.objective == pytest.approx(-8.0)

    def test_two_variable_vertex_balanced(self):
        # min −2x − y s.t. x + y ≤ 4, x ≤ 2 → (2, 2), value −6.
        result = solve_lp(
            [-2.0, -1.0],
            a_ub=[[1.0, 1.0], [1.0, 0.0]],
            b_ub=[4.0, 2.0],
        )
        assert result.x == pytest.approx([2.0, 2.0])
        assert result.objective == pytest.approx(-6.0)

    def test_equality_constraint(self):
        # min x + y s.t. x + y = 3, x,y ≥ 0 → 3.
        result = solve_lp([1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[3.0])
        assert result.objective == pytest.approx(3.0)

    def test_lower_bounds_shift(self):
        # min x with x ∈ [2, 10] → 2.
        result = solve_lp([1.0], bounds=[(2.0, 10.0)])
        assert result.x[0] == pytest.approx(2.0)

    def test_upper_bounds(self):
        result = solve_lp([-1.0], bounds=[(0.0, 7.0)])
        assert result.x[0] == pytest.approx(7.0)

    def test_free_variable(self):
        # min x with x free and x ≥ −3 via constraint −x ≤ 3.
        result = solve_lp(
            [1.0], a_ub=[[-1.0]], b_ub=[3.0],
            bounds=[(-math.inf, math.inf)],
        )
        assert result.x[0] == pytest.approx(-3.0)

    def test_negative_rhs_handled(self):
        # −x ≤ −2  ⇔  x ≥ 2.
        result = solve_lp([1.0], a_ub=[[-1.0]], b_ub=[-2.0])
        assert result.x[0] == pytest.approx(2.0)


class TestStatuses:
    def test_infeasible(self):
        # x ≤ 1 and x ≥ 2.
        result = solve_lp(
            [1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0]
        )
        assert result.status == "infeasible"
        assert result.x is None

    def test_unbounded(self):
        result = solve_lp([-1.0])  # max x, x ≥ 0, no upper limit
        assert result.status == "unbounded"

    def test_crossed_bounds_infeasible(self):
        assert solve_lp([1.0], bounds=[(3.0, 2.0)]).status == "infeasible"

    def test_degenerate_equality_feasible(self):
        # Redundant pair of equalities.
        result = solve_lp(
            [1.0, 1.0],
            a_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[2.0, 4.0],
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_inconsistent_equalities_infeasible(self):
        result = solve_lp(
            [1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, 1.0]],
            b_eq=[2.0, 3.0],
        )
        assert result.status == "infeasible"


class TestValidation:
    def test_empty_objective_rejected(self):
        with pytest.raises(ValidationError):
            solve_lp([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            solve_lp([1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_wrong_bounds_length_rejected(self):
        with pytest.raises(ValidationError):
            solve_lp([1.0, 2.0], bounds=[(0.0, 1.0)])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            solve_lp([1.0], backend="cplex")


class TestAgainstScipy:
    """Randomised cross-checks against scipy's HiGHS solver."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_bounded_problems(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 5))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m, n))
        # Keep feasible: constraints satisfied at the origin-ish point.
        b_ub = np.abs(rng.normal(size=m)) + 1.0
        bounds = [(0.0, float(rng.uniform(0.5, 5.0))) for _ in range(n)]
        ours = solve_lp(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)
        scipy_result = solve_lp(
            c, a_ub=a_ub, b_ub=b_ub, bounds=bounds, backend="scipy"
        )
        assert ours.status == scipy_result.status
        if ours.is_optimal:
            assert ours.objective == pytest.approx(
                scipy_result.objective, abs=1e-6
            )

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_random_problems_with_equalities(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        c = rng.normal(size=n)
        a_eq = rng.normal(size=(1, n))
        x0 = rng.uniform(0.2, 0.8, size=n)
        b_eq = a_eq @ x0  # feasible by construction
        bounds = [(0.0, 1.0)] * n
        ours = solve_lp(c, a_eq=a_eq, b_eq=b_eq, bounds=bounds)
        scipy_result = solve_lp(
            c, a_eq=a_eq, b_eq=b_eq, bounds=bounds, backend="scipy"
        )
        assert ours.status == scipy_result.status
        if ours.is_optimal:
            assert ours.objective == pytest.approx(
                scipy_result.objective, abs=1e-6
            )

    def test_solution_feasibility(self):
        rng = np.random.default_rng(99)
        c = rng.normal(size=4)
        a_ub = rng.normal(size=(3, 4))
        b_ub = np.abs(rng.normal(size=3)) + 0.5
        bounds = [(0.0, 2.0)] * 4
        result = solve_lp(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)
        assert result.is_optimal
        assert np.all(a_ub @ result.x <= b_ub + 1e-8)
        assert np.all(result.x >= -1e-9)
        assert np.all(result.x <= 2.0 + 1e-9)
