"""Unit tests for the closed-form and exact-RTA period adaptation."""

from __future__ import annotations

import pytest

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.model.task import SecurityTask
from repro.opt.period import adapt_period, adapt_period_exact


def sec(wcet: float, tdes: float, tmax: float) -> SecurityTask:
    return SecurityTask(name="s", wcet=wcet, period_des=tdes, period_max=tmax)


def env(*pairs: tuple[float, float]) -> InterferenceEnv:
    return InterferenceEnv([Interferer(c, t) for c, t in pairs])


class TestAdaptPeriod:
    def test_idle_core_gives_desired_period(self):
        solution = adapt_period(sec(5.0, 100.0, 1000.0), env())
        assert solution is not None
        assert solution.period == 100.0
        assert solution.tightness == 1.0
        assert solution.binding == "desired"

    def test_interference_binding(self):
        # K = 10 + 20 = 30, U = 0.5 → T* = 60 > T_des = 50.
        solution = adapt_period(sec(10.0, 50.0, 500.0), env((20.0, 40.0)))
        assert solution is not None
        assert solution.period == pytest.approx(60.0)
        assert solution.tightness == pytest.approx(50.0 / 60.0)
        assert solution.binding == "interference"

    def test_infeasible_beyond_tmax(self):
        # T* = 30/(1-0.5) = 60 > T_max = 55 → no solution.
        assert adapt_period(sec(10.0, 50.0, 55.0), env((20.0, 40.0))) is None

    def test_feasible_exactly_at_tmax(self):
        solution = adapt_period(sec(10.0, 50.0, 60.0), env((20.0, 40.0)))
        assert solution is not None
        assert solution.period == pytest.approx(60.0)

    def test_saturated_core_infeasible(self):
        assert adapt_period(sec(1.0, 50.0, 500.0), env((40.0, 40.0))) is None

    def test_constraint_satisfied_at_optimum(self):
        environment = env((3.0, 17.0), (5.0, 71.0))
        task = sec(7.0, 20.0, 2000.0)
        solution = adapt_period(task, environment)
        assert solution is not None
        lhs = task.wcet + environment.interference(solution.period)
        assert lhs <= solution.period + 1e-9

    def test_optimum_is_minimal(self):
        # Any strictly smaller period must violate a constraint.
        environment = env((3.0, 17.0), (5.0, 71.0))
        task = sec(7.0, 20.0, 2000.0)
        solution = adapt_period(task, environment)
        assert solution is not None
        smaller = solution.period * 0.999
        if smaller >= task.period_des:
            lhs = task.wcet + environment.interference(smaller)
            assert lhs > smaller


class TestAdaptPeriodExact:
    def test_idle_core(self):
        solution = adapt_period_exact(sec(5.0, 100.0, 1000.0), env())
        assert solution is not None
        assert solution.period == 100.0

    def test_never_worse_than_linear(self):
        environment = env((4.0, 10.0), (6.0, 35.0))
        task = sec(8.0, 30.0, 3000.0)
        linear = adapt_period(task, environment)
        exact = adapt_period_exact(task, environment)
        assert linear is not None and exact is not None
        assert exact.period <= linear.period + 1e-9
        assert exact.tightness >= linear.tightness - 1e-12

    def test_exact_feasible_where_linear_fails(self):
        # Linear: T* = (5+4)/(1-0.4) = 15 > T_max = 12.
        # Exact: R = 5 + ceil(R/10)*4 → 9 ≤ 12.
        environment = env((4.0, 10.0))
        task = sec(5.0, 9.0, 12.0)
        assert adapt_period(task, environment) is None
        exact = adapt_period_exact(task, environment)
        assert exact is not None
        assert exact.period == pytest.approx(9.0)

    def test_exact_infeasible_when_response_exceeds_tmax(self):
        environment = env((9.0, 10.0))
        task = sec(5.0, 9.0, 12.0)
        assert adapt_period_exact(task, environment) is None

    def test_period_equals_response_time_when_binding(self):
        from repro.analysis.rta import response_time

        environment = env((4.0, 10.0), (3.0, 9.0))
        task = sec(2.0, 5.0, 500.0)
        exact = adapt_period_exact(task, environment)
        assert exact is not None
        expected = response_time(2.0, environment.interferers)
        assert exact.period == pytest.approx(max(5.0, expected))
