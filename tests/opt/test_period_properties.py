"""Hypothesis property suite over the three Eq. (7) period solvers.

The period-adapting allocator family leans on cross-solver contracts
that the unit tests only spot-check:

* closed-form ≡ GP on every feasible instance (the paper solves the
  same problem twice);
* exact-RTA is never *looser* than the closed form (the linear envelope
  of Eq. (5) over-approximates true interference);
* all three agree on infeasibility when the required period exceeds
  ``T_max``, including the near-saturation regime ``U → 1⁻`` where the
  closed-form denominator ``1 − U`` nearly vanishes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.interference import (
    Interferer,
    InterferenceEnv,
    min_feasible_period,
)
from repro.model.task import SecurityTask
from repro.opt.period import adapt_period, adapt_period_exact
from repro.opt.period_gp import adapt_period_gp

_REL = 1e-6


def sec(wcet: float, tdes: float, tmax: float) -> SecurityTask:
    return SecurityTask(name="s", wcet=wcet, period_des=tdes,
                        period_max=tmax)


@st.composite
def environments(draw, max_utilization: float = 0.9) -> InterferenceEnv:
    n = draw(st.integers(min_value=0, max_value=4))
    interferers = []
    budget = max_utilization
    for _ in range(n):
        period = draw(st.floats(min_value=5.0, max_value=500.0))
        share = draw(st.floats(min_value=0.01, max_value=0.45))
        utilization = min(share, max(budget - 0.01, 0.01))
        budget -= utilization
        interferers.append(Interferer(period * utilization, period))
    return InterferenceEnv(interferers)


@st.composite
def tasks(draw) -> SecurityTask:
    tdes = draw(st.floats(min_value=20.0, max_value=1000.0))
    factor = draw(st.floats(min_value=1.0, max_value=20.0))
    wcet = draw(st.floats(min_value=0.1, max_value=tdes / 4.0))
    return sec(wcet, tdes, tdes * factor)


@st.composite
def near_saturation_environments(draw) -> InterferenceEnv:
    """Interferer utilisation in [0.95, 1) — the ``1 − U`` denominator
    of the closed form close to vanishing."""
    period = draw(st.floats(min_value=10.0, max_value=100.0))
    utilization = draw(st.floats(min_value=0.95, max_value=0.999999))
    return InterferenceEnv([Interferer(period * utilization, period)])


class TestClosedFormVsGp:
    @given(task=tasks(), env=environments())
    @settings(max_examples=60, deadline=None)
    def test_same_optimum_when_feasible(self, task, env):
        closed = adapt_period(task, env)
        gp = adapt_period_gp(task, env)
        assert (closed is None) == (gp is None)
        if closed is not None:
            assert gp.period == pytest.approx(closed.period, rel=_REL)
            assert gp.tightness == pytest.approx(
                closed.tightness, rel=_REL
            )


class TestExactNeverLooser:
    @given(task=tasks(), env=environments())
    @settings(max_examples=100, deadline=None)
    def test_exact_period_at_most_closed_form(self, task, env):
        closed = adapt_period(task, env)
        exact = adapt_period_exact(task, env)
        if closed is None:
            return  # exact may still succeed — strictly more permissive
        assert exact is not None
        assert exact.period <= closed.period * (1.0 + _REL)
        assert exact.tightness >= closed.tightness * (1.0 - _REL)

    @given(task=tasks(), env=environments())
    @settings(max_examples=100, deadline=None)
    def test_periods_stay_in_box(self, task, env):
        for solve in (adapt_period, adapt_period_exact):
            solution = solve(task, env)
            if solution is None:
                continue
            assert task.period_des <= solution.period
            assert solution.period <= task.period_max * (1.0 + _REL)
            assert 0.0 < solution.tightness <= 1.0 + _REL
            assert solution.binding in ("desired", "interference")

    @given(task=tasks(), env=environments())
    @settings(max_examples=100, deadline=None)
    def test_exact_optimum_is_schedulable(self, task, env):
        from repro.analysis.rta import response_time

        solution = adapt_period_exact(task, env)
        if solution is None:
            return
        response = response_time(task.wcet, env.interferers)
        assert response <= solution.period * (1.0 + _REL)


@st.composite
def infeasible_instances(draw):
    """A (task, env) pair whose closed-form required period strictly
    exceeds ``T_max`` by construction: ``T_max`` is drawn *inside* the
    gap between ``T_des`` and the required period."""
    env = draw(environments())
    wcet = draw(st.floats(min_value=0.5, max_value=50.0))
    required = (wcet + env.total_wcet) / (1.0 - env.utilization)
    # T_des above the WCET (an idle core must admit the desired rate)
    # but well inside the infeasibility gap.
    tdes = wcet * draw(st.floats(min_value=1.1, max_value=3.0))
    assume(required > tdes * 1.01)
    # T_max in [tdes, 0.99·required): below the requirement, above T_des.
    frac = draw(st.floats(min_value=0.0, max_value=0.99))
    tmax = tdes + frac * (required * 0.99 - tdes)
    return sec(wcet, tdes, max(tmax, tdes)), env


class TestRequiredPeriodBeyondTmax:
    @given(instance=infeasible_instances())
    @settings(max_examples=100, deadline=None)
    def test_infeasibility_agreement(self, instance):
        """When the closed-form required period exceeds ``T_max`` the
        closed form and the GP both return ``None``; the exact solver
        may only disagree by being *more* permissive."""
        task, env = instance
        required = min_feasible_period(task, env)
        assume(required > task.period_max * (1.0 + 1e-9))
        assert adapt_period(task, env) is None
        assert adapt_period_gp(task, env) is None
        exact = adapt_period_exact(task, env)
        if exact is not None:
            assert exact.period <= task.period_max * (1.0 + _REL)

    @given(task=tasks(), env=near_saturation_environments())
    @settings(max_examples=60, deadline=None)
    def test_near_saturation_is_never_inf(self, task, env):
        """As U → 1⁻ the required period blows up; every solver must
        return either ``None`` or a finite in-box period — never an
        ``inf`` or a period beyond ``T_max``."""
        for solve in (adapt_period, adapt_period_exact,
                      adapt_period_gp):
            solution = solve(task, env)
            if solution is not None:
                assert math.isfinite(solution.period)
                assert solution.period <= task.period_max * (1.0 + _REL)

    def test_saturated_core_rejected_by_all(self):
        env = InterferenceEnv([Interferer(40.0, 40.0)])
        task = sec(1.0, 50.0, 5000.0)
        assert adapt_period(task, env) is None
        assert adapt_period_gp(task, env) is None
        assert adapt_period_exact(task, env) is None
