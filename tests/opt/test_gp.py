"""Unit tests for the geometric-program solver and the GP period route."""

from __future__ import annotations

import math

import pytest

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.errors import InfeasibleError, ValidationError
from repro.model.task import SecurityTask
from repro.opt.gp import GeometricProgram, Monomial, Posynomial
from repro.opt.period import adapt_period
from repro.opt.period_gp import adapt_period_gp, build_period_gp


class TestMonomial:
    def test_evaluate(self):
        m = Monomial(2.0, {"x": 2.0, "y": -1.0})
        assert m.evaluate({"x": 3.0, "y": 2.0}) == pytest.approx(9.0)

    def test_multiply(self):
        a = Monomial(2.0, {"x": 1.0})
        b = Monomial(3.0, {"x": 1.0, "y": 2.0})
        c = a * b
        assert c.coeff == 6.0
        assert c.exponents == {"x": 2.0, "y": 2.0}

    def test_scalar_multiply(self):
        assert (Monomial(2.0, {"x": 1.0}) * 3).coeff == 6.0

    def test_power(self):
        m = Monomial(4.0, {"x": 2.0}) ** 0.5
        assert m.coeff == 2.0
        assert m.exponents == {"x": 1.0}

    def test_rejects_nonpositive_coeff(self):
        with pytest.raises(ValidationError):
            Monomial(0.0, {})
        with pytest.raises(ValidationError):
            Monomial(-1.0, {"x": 1.0})

    def test_variables(self):
        assert Monomial(1.0, {"x": 1.0, "y": 0.0}).variables() == {"x"}


class TestPosynomial:
    def test_sum_of_monomials(self):
        p = Monomial(1.0, {"x": 1.0}) + Monomial(2.0, {})
        assert isinstance(p, Posynomial)
        assert p.evaluate({"x": 3.0}) == pytest.approx(5.0)

    def test_posynomial_addition(self):
        p = Posynomial([Monomial(1.0, {"x": 1.0})])
        q = p + Monomial(1.0, {"x": -1.0})
        assert q.evaluate({"x": 2.0}) == pytest.approx(2.5)

    def test_requires_terms(self):
        with pytest.raises(ValidationError):
            Posynomial([])


class TestGeometricProgram:
    def test_single_variable_box(self):
        # min x s.t. 2/x ≤ 1 → x* = 2.
        gp = GeometricProgram(
            Monomial(1.0, {"x": 1.0}),
            [Monomial(2.0, {"x": -1.0})],
        )
        result = gp.solve()
        assert result.variables["x"] == pytest.approx(2.0, rel=1e-5)
        assert result.objective == pytest.approx(2.0, rel=1e-5)

    def test_two_variable_known_optimum(self):
        # min 1/(xy) s.t. x ≤ 2, y ≤ 3 → optimum at (2, 3), value 1/6.
        gp = GeometricProgram(
            Monomial(1.0, {"x": -1.0, "y": -1.0}),
            [
                Monomial(0.5, {"x": 1.0}),
                Monomial(1.0 / 3.0, {"y": 1.0}),
            ],
        )
        result = gp.solve()
        assert result.variables["x"] == pytest.approx(2.0, rel=1e-4)
        assert result.variables["y"] == pytest.approx(3.0, rel=1e-4)

    def test_posynomial_constraint(self):
        # min x s.t. 1/x + x/10 ≤ 1.  Feasible x ∈ [~1.127, ~8.873].
        gp = GeometricProgram(
            Monomial(1.0, {"x": 1.0}),
            [Monomial(1.0, {"x": -1.0}) + Monomial(0.1, {"x": 1.0})],
        )
        result = gp.solve()
        expected = 5.0 - math.sqrt(15.0)  # smaller root of x²−10x+10
        assert result.variables["x"] == pytest.approx(expected, rel=1e-4)

    def test_infeasible_raises(self):
        # x ≤ 1 and x ≥ 2 simultaneously.
        gp = GeometricProgram(
            Monomial(1.0, {"x": 1.0}),
            [
                Monomial(1.0, {"x": 1.0}),  # x ≤ 1
                Monomial(2.0, {"x": -1.0}),  # x ≥ 2
            ],
        )
        with pytest.raises(InfeasibleError):
            gp.solve()

    def test_constant_constraint_above_one_infeasible(self):
        gp = GeometricProgram(
            Monomial(1.0, {"x": 1.0}),
            [Monomial(1.5, {}), Monomial(1.0, {"x": -1.0})],
        )
        with pytest.raises(InfeasibleError):
            gp.solve()

    def test_no_variables_rejected(self):
        with pytest.raises(ValidationError):
            GeometricProgram(Monomial(1.0, {}), [])

    def test_result_satisfies_constraints(self):
        constraints = [
            Monomial(3.0, {"x": -1.0, "y": -0.5}),
            Monomial(0.25, {"x": 1.0}),
            Monomial(0.2, {"y": 1.0}),
        ]
        gp = GeometricProgram(
            Monomial(1.0, {"x": 1.0, "y": 1.0}), constraints
        )
        result = gp.solve()
        for c in constraints:
            assert c.evaluate(result.variables) <= 1.0 + 1e-6


class TestPeriodGp:
    def test_build_has_three_constraints(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=1000.0
        )
        program = build_period_gp(task, InterferenceEnv())
        assert len(program.constraints) == 3

    def test_idle_core_matches_closed_form(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=1000.0
        )
        environment = InterferenceEnv()
        gp_solution = adapt_period_gp(task, environment)
        closed = adapt_period(task, environment)
        assert gp_solution is not None and closed is not None
        assert gp_solution.period == pytest.approx(closed.period, rel=1e-5)

    def test_interference_matches_closed_form(self):
        task = SecurityTask(
            name="s", wcet=10.0, period_des=50.0, period_max=500.0
        )
        environment = InterferenceEnv([Interferer(20.0, 40.0)])
        gp_solution = adapt_period_gp(task, environment)
        closed = adapt_period(task, environment)
        assert gp_solution is not None and closed is not None
        assert gp_solution.period == pytest.approx(closed.period, rel=1e-5)
        assert gp_solution.tightness == pytest.approx(
            closed.tightness, rel=1e-5
        )

    def test_infeasible_returns_none(self):
        task = SecurityTask(
            name="s", wcet=10.0, period_des=50.0, period_max=55.0
        )
        environment = InterferenceEnv([Interferer(20.0, 40.0)])
        assert adapt_period_gp(task, environment) is None
        assert adapt_period(task, environment) is None
