"""Unit tests for the branch-and-bound optimal search."""

from __future__ import annotations

import pytest

from repro.opt.branch_bound import branch_bound_optimal
from repro.opt.exhaustive import exhaustive_optimal


class TestBranchBound:
    def test_matches_exhaustive_on_fixtures(self, loaded_system):
        exhaustive = exhaustive_optimal(loaded_system)
        bnb, stats = branch_bound_optimal(loaded_system)
        assert exhaustive is not None and bnb is not None
        assert bnb.tightness == pytest.approx(exhaustive.tightness)

    def test_matches_exhaustive_relaxed(self, two_core_system):
        exhaustive = exhaustive_optimal(two_core_system)
        bnb, _ = branch_bound_optimal(two_core_system)
        assert exhaustive is not None and bnb is not None
        assert bnb.tightness == pytest.approx(exhaustive.tightness)

    def test_matches_exhaustive_on_random_systems(self, rng):
        from repro.experiments.runner import build_hydra_system
        from repro.taskgen.synthetic import SyntheticConfig, generate_workload

        config = SyntheticConfig(security_task_count=(2, 5))
        checked = 0
        for utilization in (0.8, 1.4, 1.8):
            for _ in range(4):
                workload = generate_workload(2, utilization, rng, config)
                system = build_hydra_system(workload)
                if system is None:
                    continue
                exhaustive = exhaustive_optimal(system)
                bnb, _ = branch_bound_optimal(system)
                if exhaustive is None:
                    assert bnb is None
                else:
                    assert bnb is not None
                    assert bnb.tightness == pytest.approx(
                        exhaustive.tightness, abs=1e-6
                    )
                checked += 1
        assert checked >= 6  # the comparison actually exercised systems

    def test_stats_populated(self, loaded_system):
        _, stats = branch_bound_optimal(loaded_system)
        assert stats.nodes > 0
        assert stats.leaves_solved >= 1

    def test_infeasible_returns_none_with_stats(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import SecurityTask, TaskSet

        impossible = TaskSet(
            [
                SecurityTask(
                    name="x", wcet=90.0, period_des=100.0, period_max=101.0
                ),
            ]
        )
        system = replace(loaded_system, security_tasks=impossible, weights={})
        result, stats = branch_bound_optimal(system)
        assert result is None
        assert stats.pruned_infeasible > 0

    def test_prunes_at_least_some_nodes_on_larger_systems(self, rng):
        from repro.experiments.runner import build_hydra_system
        from repro.taskgen.synthetic import SyntheticConfig, generate_workload

        config = SyntheticConfig(security_task_count=(6, 6))
        pruned_any = False
        for _ in range(8):
            workload = generate_workload(2, 1.7, rng, config)
            system = build_hydra_system(workload)
            if system is None:
                continue
            result, stats = branch_bound_optimal(system)
            if result is not None and (
                stats.pruned_bound + stats.pruned_infeasible
            ) > 0:
                pruned_any = True
                break
        assert pruned_any
