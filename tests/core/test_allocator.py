"""Unit tests for the allocation result types."""

from __future__ import annotations

import pytest

from repro.core.allocator import (
    Allocation,
    SecurityAssignment,
    as_allocation,
)
from repro.errors import ValidationError
from repro.model.task import SecurityTask


def sec(name: str = "s", tdes: float = 100.0, tmax: float = 1000.0,
        wcet: float = 5.0) -> SecurityTask:
    return SecurityTask(
        name=name, wcet=wcet, period_des=tdes, period_max=tmax
    )


class TestSecurityAssignment:
    def test_tightness_and_utilization(self):
        assignment = SecurityAssignment(task=sec(), core=0, period=200.0)
        assert assignment.tightness == pytest.approx(0.5)
        assert assignment.utilization == pytest.approx(5.0 / 200.0)

    def test_rejects_period_below_desired(self):
        with pytest.raises(ValidationError):
            SecurityAssignment(task=sec(), core=0, period=50.0)

    def test_rejects_period_above_max(self):
        with pytest.raises(ValidationError):
            SecurityAssignment(task=sec(), core=0, period=1500.0)

    def test_allows_boundary_periods(self):
        SecurityAssignment(task=sec(), core=0, period=100.0)
        SecurityAssignment(task=sec(), core=0, period=1000.0)


class TestAllocation:
    def make(self) -> Allocation:
        assignments = (
            SecurityAssignment(task=sec("a", 100, 1000), core=0, period=100.0),
            SecurityAssignment(task=sec("b", 100, 1000), core=1, period=200.0),
        )
        return Allocation(
            scheme="test", schedulable=True, assignments=assignments
        )

    def test_lookup_by_name_and_task(self):
        allocation = self.make()
        assert allocation.assignment_for("a").core == 0
        assert allocation.assignment_for(sec("b", 100, 1000)).core == 1

    def test_lookup_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            self.make().assignment_for("ghost")

    def test_periods_and_cores_mappings(self):
        allocation = self.make()
        assert allocation.periods() == {"a": 100.0, "b": 200.0}
        assert allocation.cores() == {"a": 0, "b": 1}

    def test_tasks_on_core(self):
        allocation = self.make()
        assert [a.task.name for a in allocation.tasks_on(0)] == ["a"]
        assert allocation.tasks_on(2) == ()

    def test_cumulative_tightness_unweighted(self):
        assert self.make().cumulative_tightness() == pytest.approx(1.5)

    def test_cumulative_tightness_weighted(self):
        allocation = self.make()
        assert allocation.cumulative_tightness(
            {"a": 2.0, "b": 4.0}
        ) == pytest.approx(2.0 + 2.0)

    def test_mean_tightness(self):
        assert self.make().mean_tightness() == pytest.approx(0.75)

    def test_security_utilization(self):
        assert self.make().security_utilization() == pytest.approx(
            0.05 + 0.025
        )

    def test_unschedulable_metrics_are_zero(self):
        allocation = Allocation(
            scheme="test", schedulable=False, failed_task="a"
        )
        assert allocation.cumulative_tightness() == 0.0
        assert allocation.mean_tightness() == 0.0

    def test_schedulable_with_failed_task_rejected(self):
        with pytest.raises(ValidationError):
            Allocation(scheme="t", schedulable=True, failed_task="a")

    def test_unschedulable_with_assignments_rejected(self):
        assignment = SecurityAssignment(task=sec(), core=0, period=100.0)
        with pytest.raises(ValidationError):
            Allocation(
                scheme="t", schedulable=False, assignments=(assignment,)
            )


class TestAsAllocation:
    def test_builds_in_priority_order(self, two_core_system):
        allocation = as_allocation(
            "x",
            two_core_system,
            {"sec_hi": 0, "sec_lo": 1},
            {"sec_hi": 100.0, "sec_lo": 150.0},
        )
        assert allocation.schedulable
        # sec_hi has smaller T_max → first.
        assert [a.task.name for a in allocation.assignments] == [
            "sec_hi",
            "sec_lo",
        ]

    def test_info_passthrough(self, two_core_system):
        allocation = as_allocation(
            "x",
            two_core_system,
            {"sec_hi": 0, "sec_lo": 1},
            {"sec_hi": 100.0, "sec_lo": 150.0},
            info={"k": 1},
        )
        assert allocation.info["k"] == 1
