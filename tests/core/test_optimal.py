"""Unit tests for the OPT allocator wrapper."""

from __future__ import annotations

import pytest

from repro.core.hydra import HydraAllocator
from repro.core.optimal import OptimalAllocator


class TestOptimalAllocator:
    def test_schedulable_on_fixture(self, loaded_system):
        allocation = OptimalAllocator().allocate(loaded_system)
        assert allocation.schedulable
        assert len(allocation.assignments) == 3

    def test_dominates_hydra(self, loaded_system):
        optimal = OptimalAllocator().allocate(loaded_system)
        hydra = HydraAllocator().allocate(loaded_system)
        assert optimal.cumulative_tightness() >= (
            hydra.cumulative_tightness() - 1e-9
        )

    def test_branch_bound_same_tightness(self, loaded_system):
        exhaustive = OptimalAllocator(search="exhaustive").allocate(
            loaded_system
        )
        bnb = OptimalAllocator(search="branch-bound").allocate(loaded_system)
        assert exhaustive.cumulative_tightness() == pytest.approx(
            bnb.cumulative_tightness()
        )

    def test_info_carries_search_stats(self, loaded_system):
        exhaustive = OptimalAllocator().allocate(loaded_system)
        assert "explored" in exhaustive.info
        bnb = OptimalAllocator(search="branch-bound").allocate(loaded_system)
        assert "nodes" in bnb.info

    def test_unschedulable_system(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import SecurityTask, TaskSet

        impossible = TaskSet(
            [
                SecurityTask(
                    name="x", wcet=95.0, period_des=100.0, period_max=100.0
                )
            ]
        )
        system = replace(loaded_system, security_tasks=impossible, weights={})
        allocation = OptimalAllocator().allocate(system)
        assert not allocation.schedulable

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError):
            OptimalAllocator(search="genetic")

    def test_respects_weights(self, loaded_system):
        from dataclasses import replace

        weighted = replace(loaded_system, weights={"s2": 50.0})
        allocation = OptimalAllocator().allocate(weighted)
        assert allocation.schedulable
        # With a huge weight, s2 should achieve its desired period.
        assert allocation.assignment_for("s2").period == pytest.approx(
            400.0, rel=1e-6
        )
