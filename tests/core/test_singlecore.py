"""Unit tests for the SingleCore baseline."""

from __future__ import annotations

import pytest

from repro.core.singlecore import SingleCoreAllocator, build_singlecore_system
from repro.errors import AllocationError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet


@pytest.fixture
def rt_tasks() -> TaskSet:
    return TaskSet(
        [
            RealTimeTask(name="a", wcet=2.0, period=10.0),
            RealTimeTask(name="b", wcet=10.0, period=50.0),
        ]
    )


@pytest.fixture
def security() -> TaskSet:
    return TaskSet(
        [
            SecurityTask(
                name="s0", wcet=20.0, period_des=100.0, period_max=1000.0
            ),
            SecurityTask(
                name="s1", wcet=30.0, period_des=150.0, period_max=1500.0
            ),
        ]
    )


class TestBuildSingleCoreSystem:
    def test_reserves_last_core(self, rt_tasks, security):
        system = build_singlecore_system(Platform(2), rt_tasks, security)
        assert system is not None
        assert system.rt_partition.tasks_on(1) == ()
        assert len(system.rt_partition.tasks_on(0)) == 2

    def test_returns_none_when_rt_does_not_fit(self, security):
        heavy = TaskSet(
            [
                RealTimeTask(name="x", wcet=6.0, period=10.0),
                RealTimeTask(name="y", wcet=6.0, period=10.0),
            ]
        )
        assert build_singlecore_system(Platform(2), heavy, security) is None

    def test_rejects_single_core_platform(self, rt_tasks, security):
        with pytest.raises(AllocationError):
            build_singlecore_system(Platform(1), rt_tasks, security)

    def test_accepts_iterable_security(self, rt_tasks, security):
        system = build_singlecore_system(
            Platform(2), rt_tasks, list(security)
        )
        assert system is not None
        assert len(system.security_tasks) == 2


class TestSingleCoreAllocator:
    def test_all_tasks_on_dedicated_core(self, rt_tasks, security):
        system = build_singlecore_system(Platform(4), rt_tasks, security)
        allocation = SingleCoreAllocator().allocate(system)
        assert allocation.schedulable
        assert {a.core for a in allocation.assignments} == {3}
        assert allocation.info["dedicated_core"] == 3

    def test_no_rt_interference_on_dedicated_core(self, rt_tasks, security):
        # First security task must hit its desired period regardless of
        # how loaded the RT cores are.
        system = build_singlecore_system(Platform(2), rt_tasks, security)
        allocation = SingleCoreAllocator().allocate(system)
        assert allocation.assignments[0].period == pytest.approx(100.0)

    def test_mutual_security_interference_counts(self, rt_tasks):
        heavy_security = TaskSet(
            [
                SecurityTask(
                    name="s0", wcet=60.0, period_des=100.0, period_max=1000.0
                ),
                SecurityTask(
                    name="s1", wcet=30.0, period_des=150.0, period_max=1500.0
                ),
            ]
        )
        system = build_singlecore_system(
            Platform(2), rt_tasks, heavy_security
        )
        allocation = SingleCoreAllocator().allocate(system)
        assert allocation.schedulable
        # s1: K = 30 + 60 = 90, U = 0.6 → T = 225 > 150.
        assert allocation.assignment_for("s1").period == pytest.approx(225.0)

    def test_unschedulable_reported(self, rt_tasks):
        impossible = TaskSet(
            [
                SecurityTask(
                    name="s0", wcet=90.0, period_des=100.0, period_max=110.0
                ),
                SecurityTask(
                    name="s1", wcet=50.0, period_des=100.0, period_max=120.0
                ),
            ]
        )
        system = build_singlecore_system(Platform(2), rt_tasks, impossible)
        allocation = SingleCoreAllocator().allocate(system)
        assert not allocation.schedulable
        assert allocation.failed_task == "s1"

    def test_explicit_dedicated_core(self, rt_tasks, security):
        system = build_singlecore_system(Platform(2), rt_tasks, security)
        allocation = SingleCoreAllocator(dedicated_core=1).allocate(system)
        assert allocation.schedulable

    def test_rejects_core_hosting_rt_tasks(self, rt_tasks, security):
        system = build_singlecore_system(Platform(2), rt_tasks, security)
        with pytest.raises(AllocationError):
            SingleCoreAllocator(dedicated_core=0).allocate(system)

    def test_rejects_system_without_free_core(self, two_core_system):
        # conftest system has RT tasks only on core 0 → core 1 is free,
        # so this must succeed; then force failure with a full system.
        allocation = SingleCoreAllocator().allocate(two_core_system)
        assert allocation.schedulable
        from repro.model import Partition, SystemModel

        platform = Platform(2)
        rt = TaskSet(
            [
                RealTimeTask(name="a", wcet=1.0, period=10.0),
                RealTimeTask(name="b", wcet=1.0, period=10.0),
            ]
        )
        full = SystemModel(
            platform=platform,
            rt_partition=Partition(platform, rt, {"a": 0, "b": 1}),
            security_tasks=two_core_system.security_tasks,
        )
        with pytest.raises(AllocationError):
            SingleCoreAllocator().allocate(full)

    def test_exact_solver_never_worse(self, rt_tasks):
        heavy_security = TaskSet(
            [
                SecurityTask(
                    name="s0", wcet=60.0, period_des=100.0, period_max=1000.0
                ),
                SecurityTask(
                    name="s1", wcet=30.0, period_des=150.0, period_max=1500.0
                ),
            ]
        )
        system = build_singlecore_system(
            Platform(2), rt_tasks, heavy_security
        )
        linear = SingleCoreAllocator().allocate(system)
        exact = SingleCoreAllocator(solver="exact-rta").allocate(system)
        assert exact.cumulative_tightness() >= (
            linear.cumulative_tightness() - 1e-9
        )

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            SingleCoreAllocator(solver="magic")
