"""Unit tests for the designer-advice module."""

from __future__ import annotations

import pytest

from repro.core.advice import diagnose, max_security_scale
from repro.core.hydra import HydraAllocator
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)


def tight_system(cores: int = 1) -> SystemModel:
    """A system where the (single) security task cannot fit: the core
    is 90 % loaded and T_max is too close to T_des."""
    platform = Platform(cores)
    rt = TaskSet([RealTimeTask(name="r", wcet=9.0, period=10.0)])
    mapping = {"r": 0}
    security = TaskSet(
        [
            SecurityTask(
                name="s", wcet=5.0, period_des=50.0, period_max=80.0
            )
        ]
    )
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, rt, mapping),
        security_tasks=security,
    )


class TestDiagnose:
    def test_schedulable_system_reports_clean(self, two_core_system):
        report = diagnose(two_core_system)
        assert report.schedulable
        assert report.hints == ()
        assert "no design changes" in report.format()

    def test_unschedulable_names_failed_task(self):
        report = diagnose(tight_system())
        assert not report.schedulable
        assert report.failed_task == "s"
        assert "Unschedulable" in report.format()

    def test_stretch_hint_is_sufficient(self):
        system = tight_system()
        report = diagnose(system)
        stretch = next(
            h for h in report.hints if h.kind == "stretch-period-max"
        )
        # (5 + 9)/(1 − .9) = 140 > current 80.
        assert stretch.required == pytest.approx(140.0)
        # Applying the hint makes the system schedulable.
        fixed = SystemModel(
            platform=system.platform,
            rt_partition=system.rt_partition,
            security_tasks=TaskSet(
                [
                    SecurityTask(
                        name="s",
                        wcet=5.0,
                        period_des=50.0,
                        period_max=stretch.required + 1e-6,
                    )
                ]
            ),
        )
        assert HydraAllocator().allocate(fixed).schedulable

    def test_stretch_hint_sufficient_when_stretch_demotes_priority(self):
        """Regression (hypothesis find): security priority is
        T_max-ascending, so stretching the failed task's T_max can
        demote it past peers whose T_max lies inside the stretch —
        those peers then place first and eat the capacity the naive
        single-pass requirement assumed free.  The hint must iterate
        the requirement to a fixed point over that reordering."""
        import numpy as np

        from repro.experiments.runner import build_hydra_system
        from repro.model.transform import with_period_max
        from repro.taskgen.synthetic import SyntheticConfig, \
            generate_workload

        config = SyntheticConfig(
            security_task_count=(2, 5), period_max_factor=2.0
        )
        workload = generate_workload(
            2, 1.8984375, np.random.default_rng(163), config
        )
        system = build_hydra_system(workload)
        report = diagnose(system)
        assert not report.schedulable
        stretch = next(
            h for h in report.hints if h.kind == "stretch-period-max"
        )
        fixed_report = diagnose(
            with_period_max(
                system, stretch.task, stretch.required * (1 + 1e-9)
            )
        )
        assert (
            fixed_report.schedulable
            or fixed_report.failed_task != stretch.task
        )

    def test_wcet_hint_absent_when_no_wcet_would_fit(self):
        # tight_system: C ≤ (1 − .9)·80 − 9 = −1 → no positive WCET
        # fits, so no reduce-wcet hint may be offered.
        report = diagnose(tight_system())
        assert all(h.kind != "reduce-wcet" for h in report.hints)

    def test_wcet_hint_is_sufficient_when_offered(self):
        platform = Platform(1)
        rt = TaskSet([RealTimeTask(name="r", wcet=5.0, period=10.0)])
        security = TaskSet(
            [
                SecurityTask(
                    name="s", wcet=30.0, period_des=40.0, period_max=60.0
                )
            ]
        )
        system = SystemModel(
            platform=platform,
            rt_partition=Partition(platform, rt, {"r": 0}),
            security_tasks=security,
        )
        report = diagnose(system)
        reduce = next(h for h in report.hints if h.kind == "reduce-wcet")
        # C ≤ (1 − .5)·60 − 5 = 25.
        assert reduce.required == pytest.approx(25.0)
        fixed = SystemModel(
            platform=platform,
            rt_partition=system.rt_partition,
            security_tasks=TaskSet(
                [
                    SecurityTask(
                        name="s",
                        wcet=reduce.required,
                        period_des=40.0,
                        period_max=60.0,
                    )
                ]
            ),
        )
        assert HydraAllocator().allocate(fixed).schedulable

    def test_add_core_hint(self):
        report = diagnose(tight_system())
        add_core = next(h for h in report.hints if h.kind == "add-core")
        assert add_core.required == 2.0

    def test_shed_hint_quantifies_overload(self):
        report = diagnose(tight_system())
        shed = next(
            h for h in report.hints if h.kind == "shed-utilization"
        )
        # Need U ≤ 1 − 14/80 = 0.825 → shed = 0.9 − 0.825 = 0.075.
        assert shed.current == pytest.approx(0.075)

    def test_core_state_reported(self):
        report = diagnose(tight_system())
        assert 0 in report.core_state
        k_prime, utilization = report.core_state[0]
        assert k_prime == pytest.approx(9.0)
        assert utilization == pytest.approx(0.9)


class TestMaxSecurityScale:
    def test_relaxed_system_hits_cap(self, two_core_system):
        scale = max_security_scale(two_core_system, upper=4.0)
        assert scale == 4.0

    def test_hopeless_system_scale_zero(self):
        # tight_system's core cannot host any security work at all:
        # even C → 0 needs period (0 + 9)/0.1 = 90 > T_max = 80.
        assert max_security_scale(tight_system()) == 0.0

    def test_tight_system_scale_below_one(self):
        # (30s + 5)/0.5 ≤ 60  →  s ≤ 25/30 ≈ 0.833.
        platform = Platform(1)
        rt = TaskSet([RealTimeTask(name="r", wcet=5.0, period=10.0)])
        security = TaskSet(
            [
                SecurityTask(
                    name="s", wcet=30.0, period_des=40.0, period_max=60.0
                )
            ]
        )
        system = SystemModel(
            platform=platform,
            rt_partition=Partition(platform, rt, {"r": 0}),
            security_tasks=security,
        )
        scale = max_security_scale(system)
        assert scale == pytest.approx(25.0 / 30.0, abs=1e-2)

    def test_scale_is_achievable(self, loaded_system):
        scale = max_security_scale(loaded_system, tolerance=1e-3)
        from repro.model.task import SecurityTask, TaskSet

        shrunk = TaskSet(
            SecurityTask(
                name=t.name,
                wcet=t.wcet * max(scale - 1e-3, 1e-6),
                period_des=t.period_des,
                period_max=t.period_max,
            )
            for t in loaded_system.security_tasks
        )
        candidate = SystemModel(
            platform=loaded_system.platform,
            rt_partition=loaded_system.rt_partition,
            security_tasks=shrunk,
        )
        assert HydraAllocator().allocate(candidate).schedulable
