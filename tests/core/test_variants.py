"""Unit tests for the ablation allocator variants."""

from __future__ import annotations

from repro.core.hydra import HydraAllocator
from repro.core.variants import (
    FirstFeasibleAllocator,
    LpRefinedHydraAllocator,
    SlackiestCoreAllocator,
)


class TestFirstFeasible:
    def test_takes_lowest_feasible_core(self, loaded_system):
        allocation = FirstFeasibleAllocator().allocate(loaded_system)
        assert allocation.schedulable
        # Core 0 is feasible for s0, so first-feasible must pick it.
        assert allocation.assignment_for("s0").core == 0

    def test_never_tighter_than_hydra(self, loaded_system):
        hydra = HydraAllocator().allocate(loaded_system)
        first = FirstFeasibleAllocator().allocate(loaded_system)
        assert first.schedulable
        assert first.cumulative_tightness() <= (
            hydra.cumulative_tightness() + 1e-9
        )

    def test_unschedulable_propagates(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import SecurityTask, TaskSet

        impossible = TaskSet(
            [
                SecurityTask(
                    name="x", wcet=95.0, period_des=100.0, period_max=100.0
                )
            ]
        )
        system = replace(loaded_system, security_tasks=impossible, weights={})
        allocation = FirstFeasibleAllocator().allocate(system)
        assert not allocation.schedulable
        assert allocation.failed_task == "x"


class TestSlackiestCore:
    def test_prefers_lighter_core(self, loaded_system):
        # Core 0: U = .7; core 1: U = .55 → slackiest picks core 1 for
        # the first task.
        allocation = SlackiestCoreAllocator().allocate(loaded_system)
        assert allocation.schedulable
        assert allocation.assignment_for("s0").core == 1

    def test_accounts_for_placed_security_load(self, two_core_system):
        allocation = SlackiestCoreAllocator().allocate(two_core_system)
        assert allocation.schedulable
        cores = allocation.cores()
        # First task goes to the idle core 1; the second task then sees
        # core 1 carrying security load (u = 5/100) versus core 0's RT
        # load (u = 0.2): core 1 is still slacker → both land on core 1.
        assert cores["sec_hi"] == 1
        assert cores["sec_lo"] == 1


class TestLpRefinedHydra:
    def test_same_assignment_as_hydra(self, loaded_system):
        hydra = HydraAllocator().allocate(loaded_system)
        refined = LpRefinedHydraAllocator().allocate(loaded_system)
        assert refined.schedulable
        assert refined.cores() == hydra.cores()

    def test_never_worse_than_hydra(self, loaded_system):
        hydra = HydraAllocator().allocate(loaded_system)
        refined = LpRefinedHydraAllocator().allocate(loaded_system)
        assert refined.cumulative_tightness() >= (
            hydra.cumulative_tightness() - 1e-9
        )

    def test_info_records_both_tightness_values(self, loaded_system):
        refined = LpRefinedHydraAllocator().allocate(loaded_system)
        assert refined.info["refined_tightness"] >= (
            refined.info["greedy_tightness"] - 1e-9
        )

    def test_failure_propagates(self, loaded_system):
        from dataclasses import replace
        from repro.model.task import SecurityTask, TaskSet

        impossible = TaskSet(
            [
                SecurityTask(
                    name="x", wcet=95.0, period_des=100.0, period_max=100.0
                )
            ]
        )
        system = replace(loaded_system, security_tasks=impossible, weights={})
        allocation = LpRefinedHydraAllocator().allocate(system)
        assert not allocation.schedulable
        assert allocation.failed_task == "x"

    def test_periods_stay_in_bounds(self, loaded_system):
        refined = LpRefinedHydraAllocator().allocate(loaded_system)
        for a in refined.assignments:
            assert a.task.period_des - 1e-6 <= a.period
            assert a.period <= a.task.period_max + 1e-6
