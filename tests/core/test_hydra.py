"""Unit tests for HYDRA (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.analysis.interference import InterferenceEnv
from repro.core.hydra import HydraAllocator
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)
from repro.opt.period import adapt_period


def make_system(
    rt_by_core: dict[int, list[tuple[float, float]]],
    security: list[tuple[float, float, float]],
    cores: int,
) -> SystemModel:
    """Compact constructor: rt_by_core[core] = [(C, T)], security =
    [(C, T_des, T_max)] with priority following list order (T_max asc)."""
    platform = Platform(cores)
    rt_tasks = []
    mapping = {}
    for core, entries in rt_by_core.items():
        for i, (c, t) in enumerate(entries):
            name = f"r{core}_{i}"
            rt_tasks.append(RealTimeTask(name=name, wcet=c, period=t))
            mapping[name] = core
    security_tasks = [
        SecurityTask(
            name=f"s{i}", wcet=c, period_des=tdes, period_max=tmax
        )
        for i, (c, tdes, tmax) in enumerate(security)
    ]
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, TaskSet(rt_tasks), mapping),
        security_tasks=TaskSet(security_tasks),
    )


class TestHydraBasics:
    def test_relaxed_system_all_desired(self, two_core_system):
        allocation = HydraAllocator().allocate(two_core_system)
        assert allocation.schedulable
        for a in allocation.assignments:
            assert a.period == pytest.approx(a.task.period_des)
            assert a.tightness == pytest.approx(1.0)

    def test_assignments_in_priority_order(self, loaded_system):
        allocation = HydraAllocator().allocate(loaded_system)
        assert [a.task.name for a in allocation.assignments] == [
            "s0",
            "s1",
            "s2",
        ]

    def test_prefers_idle_core(self):
        # Core 0 busy, core 1 idle: the task must go to core 1 as soon
        # as core 0's interference stretches its period.
        system = make_system(
            {0: [(5.0, 10.0)], 1: []},
            [(10.0, 12.0, 120.0)],
            cores=2,
        )
        allocation = HydraAllocator().allocate(system)
        assert allocation.schedulable
        assert allocation.assignments[0].core == 1
        assert allocation.assignments[0].period == pytest.approx(12.0)

    def test_tie_broken_towards_lowest_core(self, two_core_system):
        # Both cores achieve η = 1 for sec_hi (core 0's load is light
        # enough): the first core evaluated must win.
        allocation = HydraAllocator().allocate(two_core_system)
        assert allocation.assignment_for("sec_hi").core == 0

    def test_unschedulable_names_first_failing_task(self):
        system = make_system(
            {0: [(9.0, 10.0)]},  # U = 0.9
            [(50.0, 60.0, 70.0)],  # needs ~59/0.1 → way past T_max
            cores=1,
        )
        allocation = HydraAllocator().allocate(system)
        assert not allocation.schedulable
        assert allocation.failed_task == "s0"
        assert allocation.assignments == ()

    def test_failure_is_on_lower_priority_task(self):
        # Priority is by T_max, so s1 (T_max = 90) is served first and
        # fits (T = 34/0.6 ≈ 56.7 ≤ 90); s0 then faces s1's
        # interference: 44/(1 − .4 − 30/56.7) ≈ 619 > 300 → s0 fails.
        system = make_system(
            {0: [(4.0, 10.0)]},  # U = 0.4
            [
                (10.0, 30.0, 300.0),  # s0 — lower priority (bigger T_max)
                (30.0, 40.0, 90.0),  # s1 — higher priority
            ],
            cores=1,
        )
        allocation = HydraAllocator().allocate(system)
        assert not allocation.schedulable
        assert allocation.failed_task == "s0"

    def test_interference_from_earlier_assignments_counted(self):
        # One core: the second task's period must reflect the first's.
        system = make_system(
            {0: []},
            [(10.0, 20.0, 2000.0), (10.0, 20.0, 2000.0)],
            cores=1,
        )
        allocation = HydraAllocator().allocate(system)
        assert allocation.schedulable
        first, second = allocation.assignments
        assert first.period == pytest.approx(20.0)
        # K = 10+10 = 20, U = 0.5 → T = 40.
        assert second.period == pytest.approx(40.0)

    def test_algorithm1_manual_trace(self, loaded_system):
        """Replay Algorithm 1 by hand and compare every decision."""
        allocation = HydraAllocator().allocate(loaded_system)
        assert allocation.schedulable
        placed: dict[int, list] = {0: [], 1: []}
        from repro.model.priority import security_priority_order

        for task in security_priority_order(loaded_system.security_tasks):
            best_core, best = None, None
            for core in loaded_system.platform:
                env = InterferenceEnv.on_core(
                    loaded_system.rt_partition.tasks_on(core), placed[core]
                )
                sol = adapt_period(task, env)
                if sol and (best is None or sol.tightness > best.tightness
                            + 1e-12):
                    best, best_core = sol, core
            assert best is not None
            actual = allocation.assignment_for(task.name)
            assert actual.core == best_core
            assert actual.period == pytest.approx(best.period)
            placed[best_core].append((task, best.period))


class TestHydraSolvers:
    def test_gp_solver_matches_closed_form(self, loaded_system):
        closed = HydraAllocator(solver="closed-form").allocate(loaded_system)
        gp = HydraAllocator(solver="gp").allocate(loaded_system)
        assert closed.schedulable and gp.schedulable
        for a_closed, a_gp in zip(closed.assignments, gp.assignments):
            assert a_gp.core == a_closed.core
            assert a_gp.period == pytest.approx(a_closed.period, rel=1e-4)

    def test_exact_rta_never_worse(self, loaded_system):
        closed = HydraAllocator().allocate(loaded_system)
        exact = HydraAllocator(solver="exact-rta").allocate(loaded_system)
        assert exact.schedulable
        assert exact.cumulative_tightness() >= (
            closed.cumulative_tightness() - 1e-9
        )

    def test_exact_rta_rescues_linear_failure(self):
        system = make_system(
            {0: [(4.0, 10.0)]},
            [(5.0, 9.0, 12.0)],
            cores=1,
        )
        assert not HydraAllocator().allocate(system).schedulable
        exact = HydraAllocator(solver="exact-rta").allocate(system)
        assert exact.schedulable

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            HydraAllocator(solver="quantum")

    def test_scheme_names(self):
        assert HydraAllocator().name == "hydra"
        assert HydraAllocator(solver="exact-rta").name == "hydra[exact-rta]"


class TestHydraInvariants:
    def test_all_constraints_hold_after_allocation(self, loaded_system):
        allocation = HydraAllocator().allocate(loaded_system)
        assert allocation.schedulable
        for core in loaded_system.platform:
            on_core = allocation.tasks_on(core)
            for i, assignment in enumerate(on_core):
                hp = [(a.task, a.period) for a in on_core[:i]]
                env = InterferenceEnv.on_core(
                    loaded_system.rt_partition.tasks_on(core), hp
                )
                lhs = assignment.task.wcet + env.interference(
                    assignment.period
                )
                assert lhs <= assignment.period + 1e-6

    def test_highest_priority_gets_desired_period_when_room_exists(
        self, loaded_system
    ):
        # On this fixture both cores can host s0 at its desired period,
        # and being served first, s0 must achieve tightness 1.
        allocation = HydraAllocator().allocate(loaded_system)
        assert allocation.assignments[0].tightness == pytest.approx(1.0)

    def test_never_beats_optimal(self, loaded_system):
        from repro.core.optimal import OptimalAllocator

        hydra = HydraAllocator().allocate(loaded_system)
        optimal = OptimalAllocator().allocate(loaded_system)
        assert optimal.cumulative_tightness() >= (
            hydra.cumulative_tightness() - 1e-9
        )
