"""Unit + integration tests for the blocking-aware HYDRA variant."""

from __future__ import annotations

import pytest

from repro.core.hydra import HydraAllocator
from repro.core.nonpreemptive import NonPreemptiveHydraAllocator
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)


def build_system(rt_specs, sec_specs, cores=2) -> SystemModel:
    platform = Platform(cores)
    rt_tasks, mapping = [], {}
    for name, wcet, period, core in rt_specs:
        rt_tasks.append(RealTimeTask(name=name, wcet=wcet, period=period))
        mapping[name] = core
    security = [
        SecurityTask(name=n, wcet=c, period_des=d, period_max=m)
        for n, c, d, m in sec_specs
    ]
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, TaskSet(rt_tasks), mapping),
        security_tasks=TaskSet(security),
    )


class TestBlockingAwarePlacement:
    def test_avoids_core_with_tight_rt_task(self):
        # Core 0 hosts a tight task (budget ≈ 2); core 1 is empty.
        # The 30 ms security check cannot go to core 0.
        system = build_system(
            [("tight", 8.0, 10.0, 0)],
            [("s", 30.0, 100.0, 1000.0)],
        )
        allocation = NonPreemptiveHydraAllocator().allocate(system)
        assert allocation.schedulable
        assert allocation.assignment_for("s").core == 1

    def test_plain_hydra_would_pick_the_unsafe_core(self):
        # Same system: plain HYDRA (preemptive model) is free to use
        # core 1 too, but on a single-core platform it would accept the
        # unsafe placement that the blocking-aware variant rejects.
        system = build_system(
            [("tight", 8.0, 10.0, 0)],
            [("s", 30.0, 100.0, 1000.0)],
            cores=1,
        )
        plain = HydraAllocator().allocate(system)
        aware = NonPreemptiveHydraAllocator().allocate(system)
        assert plain.schedulable  # preemptive analysis says fine
        assert not aware.schedulable  # blocking analysis says no core

    def test_budgets_reported(self):
        system = build_system(
            [("a", 2.0, 10.0, 0)],
            [("s", 1.0, 100.0, 1000.0)],
        )
        allocation = NonPreemptiveHydraAllocator().allocate(system)
        budgets = allocation.info["blocking_budgets"]
        assert budgets[0] == pytest.approx(8.0, abs=1e-3)
        assert budgets[1] == float("inf")

    def test_matches_hydra_when_blocking_is_harmless(self, two_core_system):
        plain = HydraAllocator().allocate(two_core_system)
        aware = NonPreemptiveHydraAllocator().allocate(two_core_system)
        assert aware.schedulable
        assert aware.cores() == plain.cores()
        assert aware.periods() == pytest.approx(plain.periods())

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            NonPreemptiveHydraAllocator(solver="magic")


class TestEndToEndNoMisses:
    def test_simulated_rt_tasks_never_miss(self):
        """The whole point: blocking-aware allocation + non-preemptive
        simulation → zero real-time deadline misses."""
        from repro.experiments.fig1 import build_uav_systems
        from repro.sim.runner import simulate_allocation

        hydra_system, _, _, _ = build_uav_systems(4)
        aware = NonPreemptiveHydraAllocator().allocate(hydra_system)
        assert aware.schedulable
        result = simulate_allocation(
            hydra_system,
            aware,
            duration=30_000.0,
            preemptible_security=False,
        )
        rt_names = set(hydra_system.rt_tasks.names)
        rt_misses = [m for m in result.misses if m.task in rt_names]
        assert rt_misses == []

    def test_plain_allocation_does_miss_for_contrast(self):
        from repro.experiments.fig1 import build_uav_systems
        from repro.sim.runner import simulate_allocation

        hydra_system, hydra_alloc, _, _ = build_uav_systems(4)
        result = simulate_allocation(
            hydra_system,
            hydra_alloc,
            duration=30_000.0,
            preemptible_security=False,
        )
        rt_names = set(hydra_system.rt_tasks.names)
        assert any(m.task in rt_names for m in result.misses)
