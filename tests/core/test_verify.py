"""Unit tests for the independent allocation verifier."""

from __future__ import annotations

import pytest

from repro.core.allocator import Allocation, SecurityAssignment
from repro.core.hydra import HydraAllocator
from repro.core.nonpreemptive import NonPreemptiveHydraAllocator
from repro.core.optimal import OptimalAllocator
from repro.core.singlecore import SingleCoreAllocator
from repro.core.variants import (
    FirstFeasibleAllocator,
    LpRefinedHydraAllocator,
    SlackiestCoreAllocator,
)
from repro.core.verify import verify_allocation


class TestVerifierAcceptsAllAllocators:
    @pytest.mark.parametrize(
        "allocator",
        [
            HydraAllocator(),
            HydraAllocator(solver="gp"),
            FirstFeasibleAllocator(),
            SlackiestCoreAllocator(),
            LpRefinedHydraAllocator(),
            OptimalAllocator(),
            OptimalAllocator(search="branch-bound"),
        ],
        ids=lambda a: a.name,
    )
    def test_every_allocator_produces_verified_output(
        self, loaded_system, allocator
    ):
        allocation = allocator.allocate(loaded_system)
        assert allocation.schedulable
        result = verify_allocation(loaded_system, allocation)
        assert result.ok, result.format()

    def test_exact_rta_allocations_verify_under_exact_mode(
        self, loaded_system
    ):
        allocation = HydraAllocator(solver="exact-rta").allocate(
            loaded_system
        )
        # Exact allocations may violate the stricter linear bound...
        exact_result = verify_allocation(
            loaded_system, allocation, exact=True
        )
        assert exact_result.ok

    def test_np_allocator_correctly_refuses_tight_fixture(
        self, loaded_system
    ):
        # loaded_system's security WCETs (20–40) exceed every core's
        # blocking budget (≤ 6 on core 0, ≤ 15 on core 1), so the
        # blocking-aware allocator must refuse — unlike plain HYDRA.
        allocation = NonPreemptiveHydraAllocator().allocate(loaded_system)
        assert not allocation.schedulable
        assert HydraAllocator().allocate(loaded_system).schedulable

    def test_nonpreemptive_allocator_passes_blocking_audit(self):
        from repro.experiments.fig1 import build_uav_systems

        system, _, _, _ = build_uav_systems(4)
        allocation = NonPreemptiveHydraAllocator().allocate(system)
        result = verify_allocation(system, allocation, non_preemptive=True)
        assert result.ok, result.format()

    def test_plain_hydra_fails_blocking_audit_on_uav(self):
        from repro.experiments.fig1 import build_uav_systems

        system, allocation, _, _ = build_uav_systems(4)
        result = verify_allocation(system, allocation, non_preemptive=True)
        assert not result.ok
        assert any(v.kind == "blocking" for v in result.violations)

    def test_singlecore_verifies(self, rng):
        from repro.core.singlecore import build_singlecore_system
        from repro.taskgen.synthetic import generate_workload

        workload = generate_workload(2, 0.9, rng)
        system = build_singlecore_system(
            workload.platform, workload.rt_tasks, workload.security_tasks
        )
        allocation = SingleCoreAllocator().allocate(system)
        if allocation.schedulable:
            assert verify_allocation(system, allocation).ok


class TestVerifierCatchesViolations:
    def test_unschedulable_allocation_flagged(self, loaded_system):
        failed = Allocation(scheme="x", schedulable=False, failed_task="s0")
        result = verify_allocation(loaded_system, failed)
        assert not result.ok
        assert result.violations[0].kind == "coverage"

    def test_missing_task_detected(self, loaded_system):
        allocation = HydraAllocator().allocate(loaded_system)
        truncated = Allocation(
            scheme="x",
            schedulable=True,
            assignments=allocation.assignments[:-1],
        )
        result = verify_allocation(loaded_system, truncated)
        assert any(v.kind == "coverage" for v in result.violations)

    def test_alien_task_detected(self, loaded_system, security_pair):
        allocation = HydraAllocator().allocate(loaded_system)
        alien = SecurityAssignment(
            task=security_pair["sec_hi"], core=0, period=120.0
        )
        doctored = Allocation(
            scheme="x",
            schedulable=True,
            assignments=(*allocation.assignments, alien),
        )
        result = verify_allocation(loaded_system, doctored)
        assert any(v.kind == "coverage" for v in result.violations)

    def test_bad_core_detected(self, loaded_system):
        allocation = HydraAllocator().allocate(loaded_system)
        moved = tuple(
            SecurityAssignment(task=a.task, core=9, period=a.period)
            if i == 0
            else a
            for i, a in enumerate(allocation.assignments)
        )
        doctored = Allocation(
            scheme="x", schedulable=True, assignments=moved
        )
        result = verify_allocation(loaded_system, doctored)
        assert any(v.kind == "core" for v in result.violations)

    def test_overloaded_core_detected(self, loaded_system):
        # Force all three tasks onto core 0 at their desired periods —
        # the fixture is tight enough that Eq. (6) breaks.
        assignments = tuple(
            SecurityAssignment(task=t, core=0, period=t.period_des)
            for t in loaded_system.security_tasks
        )
        doctored = Allocation(
            scheme="x", schedulable=True, assignments=assignments
        )
        result = verify_allocation(loaded_system, doctored)
        assert any(
            v.kind == "schedulability" for v in result.violations
        ), result.format()

    def test_format_lists_violations(self, loaded_system):
        failed = Allocation(scheme="x", schedulable=False, failed_task="s0")
        text = verify_allocation(loaded_system, failed).format()
        assert "violation" in text
