"""Unit tests for serialisation round-trips."""

from __future__ import annotations

import pytest

from repro.core.hydra import HydraAllocator
from repro.errors import ValidationError
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    load_json,
    partition_from_dict,
    partition_to_dict,
    rows_to_csv,
    save_json,
    system_from_dict,
    system_to_dict,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.model import RealTimeTask, SecurityTask, TaskSet


class TestTaskRoundTrip:
    def test_rt_task(self):
        task = RealTimeTask(name="t", wcet=2.0, period=10.0, deadline=8.0)
        assert task_from_dict(task_to_dict(task)) == task

    def test_rt_task_implicit_deadline(self):
        task = RealTimeTask(name="t", wcet=2.0, period=10.0)
        restored = task_from_dict(task_to_dict(task))
        assert restored.deadline == 10.0

    def test_security_task(self):
        task = SecurityTask(
            name="s", wcet=5.0, period_des=100.0, period_max=1000.0,
            weight=2.0, surface="fs",
        )
        restored = task_from_dict(task_to_dict(task))
        assert restored == task
        assert restored.surface == "fs"
        assert restored.weight == 2.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            task_from_dict({"type": "alien", "name": "x"})

    def test_non_task_rejected(self):
        with pytest.raises(ValidationError):
            task_to_dict("not a task")  # type: ignore[arg-type]

    def test_taskset_roundtrip(self, rt_pair):
        assert taskset_from_dict(taskset_to_dict(rt_pair)) == rt_pair

    def test_mixed_taskset_roundtrip(self):
        tasks = TaskSet(
            [
                RealTimeTask(name="r", wcet=1.0, period=10.0),
                SecurityTask(
                    name="s", wcet=1.0, period_des=50.0, period_max=500.0
                ),
            ]
        )
        assert taskset_from_dict(taskset_to_dict(tasks)) == tasks


class TestSystemRoundTrip:
    def test_partition(self, two_core_system):
        partition = two_core_system.rt_partition
        restored = partition_from_dict(partition_to_dict(partition))
        assert restored == partition

    def test_system(self, loaded_system):
        restored = system_from_dict(system_to_dict(loaded_system))
        assert restored.platform == loaded_system.platform
        assert restored.rt_partition == loaded_system.rt_partition
        assert restored.security_tasks == loaded_system.security_tasks

    def test_system_with_weights(self, loaded_system):
        from dataclasses import replace

        weighted = replace(loaded_system, weights={"s0": 3.0})
        restored = system_from_dict(system_to_dict(weighted))
        assert restored.weight_of("s0") == 3.0

    def test_restored_system_allocates_identically(self, loaded_system):
        restored = system_from_dict(system_to_dict(loaded_system))
        original = HydraAllocator().allocate(loaded_system)
        again = HydraAllocator().allocate(restored)
        assert original.cores() == again.cores()
        assert original.periods() == pytest.approx(again.periods())


class TestAllocationRoundTrip:
    def test_schedulable_allocation(self, loaded_system):
        allocation = HydraAllocator().allocate(loaded_system)
        restored = allocation_from_dict(allocation_to_dict(allocation))
        assert restored.schedulable
        assert restored.cores() == allocation.cores()
        assert restored.periods() == pytest.approx(allocation.periods())
        assert restored.cumulative_tightness() == pytest.approx(
            allocation.cumulative_tightness()
        )

    def test_unschedulable_allocation(self):
        from repro.core.allocator import Allocation

        failed = Allocation(scheme="x", schedulable=False, failed_task="s")
        restored = allocation_from_dict(allocation_to_dict(failed))
        assert not restored.schedulable
        assert restored.failed_task == "s"

    def test_info_survives_with_stringly_fallback(self, loaded_system):
        from repro.core.allocator import Allocation, SecurityAssignment

        allocation = Allocation(
            scheme="x",
            schedulable=True,
            assignments=(
                SecurityAssignment(
                    task=loaded_system.security_tasks["s0"],
                    core=0,
                    period=300.0,
                ),
            ),
            info={"nested": {"a": 1}, "weird": object()},
        )
        data = allocation_to_dict(allocation)
        assert data["info"]["nested"] == {"a": 1}
        assert isinstance(data["info"]["weird"], str)


class TestFiles:
    def test_json_file_roundtrip(self, tmp_path, loaded_system):
        path = save_json(system_to_dict(loaded_system), tmp_path / "sys.json")
        restored = system_from_dict(load_json(path))
        assert restored.security_tasks == loaded_system.security_tasks

    def test_json_is_actually_json(self, tmp_path, two_core_system):
        import json

        path = save_json(
            system_to_dict(two_core_system), tmp_path / "sys.json"
        )
        parsed = json.loads(path.read_text())
        assert "partition" in parsed

    def test_rows_to_csv(self, tmp_path):
        path = rows_to_csv(
            ["u", "ratio"], [[0.5, 1.0], [1.5, 0.25]], tmp_path / "r.csv"
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "u,ratio"
        assert lines[1] == "0.5,1.0"
        assert len(lines) == 3

    def test_csv_of_fig2_panel(self, tmp_path):
        from repro.experiments.config import SCALES
        from repro.experiments.fig2 import run_fig2

        result = run_fig2(SCALES["smoke"])
        panel = result.panel(2)
        path = rows_to_csv(
            ["utilization", "hydra", "single"],
            [(p.utilization, p.ratio_hydra, p.ratio_single) for p in panel],
            tmp_path / "fig2.csv",
        )
        assert len(path.read_text().strip().splitlines()) == len(panel) + 1
