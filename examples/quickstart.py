#!/usr/bin/env python3
"""Quickstart: allocate security tasks on a multicore RTS with HYDRA.

Builds the paper's UAV control workload (six real-time tasks), adds the
Table I Tripwire/Bro security suite, partitions the real-time tasks
over a 4-core platform and runs HYDRA (Algorithm 1) to pick a core and
a period for every security task.

Run:  python examples/quickstart.py
"""

from repro.core import HydraAllocator
from repro.model import Platform, SystemModel
from repro.partition import partition_tasks
from repro.taskgen import table1_security_tasks, uav_rt_tasks


def main() -> None:
    # 1. The platform and the existing real-time workload.
    platform = Platform(4)
    rt_tasks = uav_rt_tasks()
    print(f"Platform: {platform.num_cores} cores")
    print(f"Real-time tasks ({len(rt_tasks)}):")
    for task in rt_tasks:
        print(
            f"  {task.name:<18} C={task.wcet:6.1f} ms  T={task.period:7.1f} "
            f"ms  (u={task.utilization:.3f})"
        )

    # 2. Partition the real-time tasks (the paper uses best-fit); HYDRA
    #    never perturbs this partition or any real-time parameter.
    partition = partition_tasks(rt_tasks, platform, heuristic="best-fit")
    print("\nReal-time partition (best-fit, exact RTA admission):")
    for core in platform:
        names = [t.name for t in partition.tasks_on(core)]
        utilization = partition.utilization_of(core)
        print(f"  core {core}: u={utilization:.3f}  {names}")

    # 3. The security workload to retrofit (paper Table I).
    security = table1_security_tasks()
    print(f"\nSecurity tasks ({len(security)}):")
    for task in security:
        print(
            f"  {task.name:<16} C={task.wcet:6.1f} ms  "
            f"T_des={task.period_des:7.1f}  T_max={task.period_max:8.1f}  "
            f"surface={task.surface}"
        )

    # 4. Run HYDRA.
    system = SystemModel(
        platform=platform, rt_partition=partition, security_tasks=security
    )
    allocation = HydraAllocator().allocate(system)

    if not allocation.schedulable:
        print(f"\nUnschedulable (first failing task: {allocation.failed_task})")
        return

    print("\nHYDRA allocation (core + adapted period per security task):")
    for a in allocation.assignments:
        print(
            f"  {a.task.name:<16} -> core {a.core}  T={a.period:8.1f} ms  "
            f"tightness η={a.tightness:.3f}"
        )
    print(
        f"\nCumulative tightness Σω·η = "
        f"{allocation.cumulative_tightness():.3f} "
        f"(max possible {len(security)}); "
        f"security utilisation consumed: "
        f"{allocation.security_utilization():.3f}"
    )


if __name__ == "__main__":
    main()
