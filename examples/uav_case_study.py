#!/usr/bin/env python3
"""UAV case study (paper Sec. IV-A / Fig. 1) at example scale.

Compares HYDRA against the SingleCore baseline on the UAV workload:
allocates both, simulates the schedules, injects synthetic attacks and
reports detection-time statistics plus a schedule excerpt.

Run:  python examples/uav_case_study.py [cores]
"""

import sys

import numpy as np

from repro.experiments.fig1 import build_uav_systems
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.improvement import detection_speedup
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.sim.trace import ascii_gantt, merge_slices

DURATION_MS = 60_000.0
ATTACKS = 40


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    hydra_system, hydra_alloc, single_system, single_alloc = (
        build_uav_systems(cores)
    )

    print(f"UAV case study on {cores} cores")
    print("\nSecurity allocation (HYDRA vs SingleCore):")
    print(f"  {'task':<16}{'HYDRA core':>11}{'HYDRA T':>10}{'SC T':>10}")
    for a in hydra_alloc.assignments:
        single_period = single_alloc.assignment_for(a.task.name).period
        print(
            f"  {a.task.name:<16}{a.core:>11}{a.period:>10.0f}"
            f"{single_period:>10.0f}"
        )

    rng = np.random.default_rng(7)
    observations = {}
    for label, system, allocation in (
        ("HYDRA", hydra_system, hydra_alloc),
        ("SingleCore", single_system, single_alloc),
    ):
        result = simulate_allocation(
            system, allocation, duration=DURATION_MS, rng=rng
        )
        attacks = sample_attacks(
            ATTACKS,
            (0.0, DURATION_MS / 2.0),
            surfaces_of(system.security_tasks),
            rng=rng,
        )
        observations[label] = detection_times(
            result, attacks, system.security_tasks
        )

    print(f"\nDetection times over {ATTACKS} synthetic attacks:")
    for label, times in observations.items():
        cdf = EmpiricalCDF(times)
        print(
            f"  {label:<11} mean={cdf.mean_detected():7.0f} ms   "
            f"median={cdf.quantile(0.5):7.0f} ms   "
            f"p90={cdf.quantile(0.9):7.0f} ms"
        )
    speedup = detection_speedup(
        observations["HYDRA"], observations["SingleCore"]
    )
    print(f"\nHYDRA detects {speedup:.1f}% faster on average "
          f"(paper: 19.81/27.23/29.75% for 2/4/8 cores)")

    # A short schedule excerpt of the HYDRA system.
    excerpt = simulate_allocation(
        hydra_system, hydra_alloc, duration=3000.0, collect_slices=True
    )
    print("\nFirst 3 seconds of the HYDRA schedule "
          "(letters = running task, '.' = idle):")
    print(ascii_gantt(merge_slices(excerpt.slices), end=3000.0, width=72))


if __name__ == "__main__":
    main()
