#!/usr/bin/env python3
"""Designer feedback for an unschedulable system.

The paper notes that HYDRA's *Unschedulable* verdict "will provide
hints to the designers to update the parameters".  This example builds
a deliberately overloaded 2-core system, lets HYDRA fail, and asks
:func:`repro.core.diagnose` for the minimal parameter changes that
would fix it — then applies one and shows the system going green.

Run:  python examples/design_advice.py
"""

from dataclasses import replace

from repro.core import HydraAllocator, diagnose, max_security_scale
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)


def build_overloaded_system() -> SystemModel:
    platform = Platform(2)
    rt = TaskSet(
        [
            RealTimeTask(name="control", wcet=6.0, period=10.0),  # u=.6
            RealTimeTask(name="sensing", wcet=8.0, period=20.0),  # u=.4
            RealTimeTask(name="logging", wcet=30.0, period=100.0),  # u=.3
        ]
    )
    partition = Partition(
        platform, rt, {"control": 0, "sensing": 1, "logging": 1}
    )
    security = TaskSet(
        [
            SecurityTask(
                name="integrity", wcet=35.0, period_des=80.0,
                period_max=160.0,
            ),
            SecurityTask(
                name="net_scan", wcet=60.0, period_des=100.0,
                period_max=200.0,
            ),
        ]
    )
    return SystemModel(
        platform=platform, rt_partition=partition, security_tasks=security
    )


def main() -> None:
    system = build_overloaded_system()
    print("Cores:", system.platform.num_cores,
          "| RT utilisation per core:",
          [round(u, 2) for u in system.rt_partition.utilizations()])

    report = diagnose(system)
    print("\n" + report.format())

    scale = max_security_scale(system)
    print(
        f"\nSizing: the system tolerates at most {scale:.2f}× the "
        f"current security WCETs."
    )

    stretch = next(
        (h for h in report.hints if h.kind == "stretch-period-max"), None
    )
    if stretch is not None:
        task = system.security_tasks[stretch.task]
        fixed_security = TaskSet(
            replace(t, period_max=stretch.required + 1e-9)
            if t.name == stretch.task
            else t
            for t in system.security_tasks
        )
        fixed = SystemModel(
            platform=system.platform,
            rt_partition=system.rt_partition,
            security_tasks=fixed_security,
        )
        allocation = HydraAllocator().allocate(fixed)
        print(
            f"\nApplying the first hint (T_max of {task.name!r}: "
            f"{task.period_max:.0f} → {stretch.required:.0f}):"
        )
        print("  schedulable:", allocation.schedulable)
        for a in allocation.assignments:
            print(
                f"  {a.task.name:<10} core {a.core}  "
                f"T={a.period:7.1f}  η={a.tightness:.3f}"
            )


if __name__ == "__main__":
    main()
