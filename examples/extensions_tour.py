#!/usr/bin/env python3
"""Tour of the paper's §V extensions, implemented in the simulator.

The paper's discussion section sketches three directions beyond the
core HYDRA design; all three are implemented here and compared on the
UAV case study:

* **global scheduling** — security jobs may migrate to any idle core;
* **non-preemptive security** — a started check runs to completion
  (and, as the output shows, blocks real-time tasks: this is *why* the
  paper's baseline design keeps security preemptible);
* **precedence constraints** — Tripwire's own binary is verified before
  any other Tripwire check of the same round.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro.experiments.fig1 import build_uav_systems
from repro.metrics.cdf import EmpiricalCDF
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.taskgen.security_apps import TRIPWIRE_PRECEDENCE

CORES = 4
DURATION_MS = 60_000.0
ATTACKS = 40

MODES = (
    ("partitioned (paper)", {}),
    ("global migration (§V)", {"security_mode": "global"}),
    ("non-preemptive (§V)", {"preemptible_security": False}),
    ("precedence (§V)", {"precedence": TRIPWIRE_PRECEDENCE}),
)


def main() -> None:
    from repro.core import NonPreemptiveHydraAllocator

    hydra_system, hydra_alloc, _, _ = build_uav_systems(CORES)
    security = hydra_system.security_tasks
    surfaces = surfaces_of(security)
    aware_alloc = NonPreemptiveHydraAllocator().allocate(hydra_system)

    modes = list(MODES)
    if aware_alloc.schedulable:
        modes.append(
            ("np + blocking-aware", {"preemptible_security": False,
                                     "_alloc": aware_alloc})
        )

    print(f"UAV case study, HYDRA allocation, {CORES} cores, "
          f"{ATTACKS} attacks per mode\n")
    print(f"{'mode':<24}{'mean det.':>10}{'p90 det.':>10}"
          f"{'RT misses':>11}")
    for label, kwargs in modes:
        kwargs = dict(kwargs)
        allocation = kwargs.pop("_alloc", hydra_alloc)
        rng = np.random.default_rng(99)
        result = simulate_allocation(
            hydra_system,
            allocation,
            duration=DURATION_MS,
            rng=rng,
            **kwargs,
        )
        attacks = sample_attacks(
            ATTACKS, (0.0, DURATION_MS / 2.0), surfaces, rng=rng
        )
        cdf = EmpiricalCDF(detection_times(result, attacks, security))
        security_names = set(security.names)
        rt_misses = sum(
            1 for m in result.misses if m.task not in security_names
        )
        print(
            f"{label:<24}{cdf.mean_detected():>9.0f}ms"
            f"{cdf.quantile(0.9):>9.0f}ms{rt_misses:>11}"
        )

    print(
        "\nReading: migration shortens detection (idle cores get used); "
        "non-preemptive\nsecurity blocks real-time tasks (deadline "
        "misses!) unless the blocking-aware\nallocator filters "
        "placements (last row: zero misses); precedence delays\n"
        "dependent checks slightly (freshness rule)."
    )


if __name__ == "__main__":
    main()
