#!/usr/bin/env python3
"""HYDRA vs the optimal assignment (paper Sec. IV-B.2 / Fig. 3).

Builds a deliberately tight 2-core system, then compares three ways of
assigning its security tasks:

* HYDRA (greedy, priority order, argmax tightness);
* HYDRA + joint-LP period refinement (same cores, better periods);
* the exact optimum (branch-and-bound over every assignment, joint LP
  per assignment).

Run:  python examples/optimal_comparison.py
"""

import numpy as np

from repro.core import HydraAllocator, OptimalAllocator
from repro.core.variants import LpRefinedHydraAllocator
from repro.experiments.runner import build_hydra_system
from repro.metrics.improvement import tightness_gap
from repro.taskgen.synthetic import SyntheticConfig, generate_workload

UTILIZATION = 1.9  # near the 2-core capacity → visible gap (Fig. 3)


def main() -> None:
    rng = np.random.default_rng(2018)
    config = SyntheticConfig(security_task_count=(5, 6))

    system = None
    while system is None:
        workload = generate_workload(2, UTILIZATION, rng, config)
        system = build_hydra_system(workload)

    print(
        f"System: {len(system.rt_tasks)} RT tasks "
        f"(per-core u = {[round(u, 2) for u in system.rt_partition.utilizations()]}), "
        f"{len(system.security_tasks)} security tasks, "
        f"U_total ≈ {UTILIZATION}"
    )

    allocators = [
        HydraAllocator(),
        LpRefinedHydraAllocator(),
        OptimalAllocator(search="branch-bound"),
    ]
    results = {}
    for allocator in allocators:
        allocation = allocator.allocate(system)
        results[allocator.name] = allocation
        if not allocation.schedulable:
            print(f"\n{allocator.name}: unschedulable "
                  f"({allocation.failed_task})")
            continue
        print(f"\n{allocator.name}:")
        for a in allocation.assignments:
            print(
                f"  {a.task.name:<8} core {a.core}  T={a.period:9.1f}  "
                f"η={a.tightness:.3f}"
            )
        print(f"  cumulative tightness: "
              f"{allocation.cumulative_tightness():.4f}")

    hydra = results["hydra"]
    optimal = results["optimal[branch-bound]"]
    if hydra.schedulable and optimal.schedulable:
        gap = tightness_gap(
            optimal.cumulative_tightness(), hydra.cumulative_tightness()
        )
        print(
            f"\nΔη = (η_OPT − η_HYDRA)/η_OPT = {gap:.2f}% "
            f"(paper Fig. 3: ≤ 22% even at high utilisation)"
        )
        stats = optimal.info
        print(
            f"Branch-and-bound explored {stats.get('nodes')} nodes, "
            f"solved {stats.get('explored')} leaf LPs, pruned "
            f"{stats.get('pruned')} subtrees "
            f"(exhaustive would solve {2 ** len(system.security_tasks)})"
        )


if __name__ == "__main__":
    main()
