#!/usr/bin/env python3
"""Synthetic design-space sweep (paper Sec. IV-B / Fig. 2) at example
scale.

Sweeps total utilisation on a 2-core platform, generating synthetic
task sets per the paper's recipe and recording how many each allocation
design schedules.  Shows the paper's headline: a dedicated security
core works at low load but collapses well before HYDRA's opportunistic
placement does.

Run:  python examples/design_space_sweep.py
"""

import numpy as np

from repro.experiments.runner import run_acceptance_trial
from repro.metrics.acceptance import AcceptanceCounter
from repro.metrics.improvement import acceptance_improvement

CORES = 2
TASKSETS_PER_POINT = 25
UTILIZATION_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 0.9)


def main() -> None:
    rng = np.random.default_rng(42)
    print(
        f"Acceptance sweep on {CORES} cores "
        f"({TASKSETS_PER_POINT} synthetic task sets per point)\n"
    )
    print(f"{'U/M':>5} {'U_total':>8} {'HYDRA':>7} {'SingleCore':>11} "
          f"{'improvement':>12}")
    for fraction in UTILIZATION_FRACTIONS:
        utilization = fraction * CORES
        hydra_counter = AcceptanceCounter()
        single_counter = AcceptanceCounter()
        for _ in range(TASKSETS_PER_POINT):
            outcome = run_acceptance_trial(CORES, utilization, rng)
            hydra_counter.record(outcome.hydra_schedulable)
            single_counter.record(outcome.single_schedulable)
        improvement = acceptance_improvement(
            hydra_counter.ratio, single_counter.ratio
        )
        print(
            f"{fraction:>5.2f} {utilization:>8.2f} "
            f"{hydra_counter.ratio:>7.2f} {single_counter.ratio:>11.2f} "
            f"{improvement:>11.1f}%"
        )
    print(
        "\nReading: both designs accept everything at low utilisation; "
        "as load grows,\nthe dedicated core saturates first because all "
        "security interference is\nconcentrated there (paper Fig. 2)."
    )


if __name__ == "__main__":
    main()
