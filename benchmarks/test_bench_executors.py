"""Bench: the ``subprocess-workers`` executor's dispatch overhead.

The NDJSON transport pays a JSON round-trip per point instead of the
fork pool's pickle-by-reference, so its dispatch cost is worth pinning:
a multi-sweep fan-out through one *persistent* set of workers (the
``repro all``-shaped reuse pattern) is gated against the committed
baseline by ``tools/check_bench.py``.  Byte-identity with the serial
engine is asserted unconditionally — the fault-tolerant transport may
cost milliseconds, never correctness.
"""

from __future__ import annotations

import json
import os
import time

from repro.executors import SubprocessExecutor
from repro.experiments.parallel import SweepEngine, SweepSpec

#: Fixed at 2 (not CPU-capped): the measured effect is per-point
#: protocol overhead over long-lived workers, which exists regardless
#: of how many CPUs back them.
_WORKERS = 2
_PANELS = 8
_POINTS = 8


def _specs() -> list[SweepSpec]:
    """Calibration sweeps: per-point cost ≈ 0, so wall time *is* the
    executor's task-protocol overhead (what this benchmark pins)."""
    return [
        SweepSpec(
            kind="calibration",
            seed=3000 + panel,
            points=tuple({"index": i} for i in range(_POINTS)),
        )
        for panel in range(_PANELS)
    ]


def _payload_bytes(result) -> bytes:
    return json.dumps(result.payloads, sort_keys=True).encode()


def test_subprocess_executor_fanout(benchmark):
    """Pinned: multi-sweep fan-out over persistent NDJSON workers must
    stay fast (workers spawn once, tasks stream with no respawns)."""
    specs = _specs()
    serial = [SweepEngine(workers=1).run(spec) for spec in specs]

    with SubprocessExecutor(workers=_WORKERS) as executor:
        engine = SweepEngine(executor=executor)

        def fan_out():
            return [engine.run(spec) for spec in specs]

        # One warmup round pays the lazy worker spawn, so the pinned
        # mean measures steady-state dispatch, not interpreter startup.
        results = benchmark.pedantic(
            fan_out, rounds=3, iterations=1, warmup_rounds=1
        )

        start = time.perf_counter()
        again = fan_out()
        elapsed = time.perf_counter() - start
        print()
        print(
            f"fan-out over {_PANELS} sweeps × {_POINTS} points through "
            f"{_WORKERS} persistent subprocess workers: "
            f"{elapsed*1000:.0f}ms ({os.cpu_count()} CPU(s))"
        )

        # One spawn per worker served every round: reuse, no respawns.
        assert executor.spawn_count == _WORKERS

    # Determinism first: the transport never changes a byte.
    for a, b, c in zip(serial, results, again):
        assert _payload_bytes(a) == _payload_bytes(b) == _payload_bytes(c)
