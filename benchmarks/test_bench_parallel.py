"""Bench: the sweep engine — serial vs parallel vs cache-hit.

Three properties of the engine are measured on a Fig. 1-sized
acceptance mini-sweep (one panel's worth of utilisation points):

* a parallel run returns **byte-identical** payloads to the serial
  run (asserted unconditionally);
* with ≥ 2 CPUs, fanning points over workers is measurably faster
  than the serial run (asserted when the hardware can show it;
  reported either way);
* a cache-warm rerun is an order of magnitude faster than computing
  (it reads one shard index plus a few records) and returns identical
  payloads;
* reusing one persistent :class:`WorkerPool` across a multi-panel,
  ``repro all --scale smoke``-shaped batch of sweeps beats the old
  fork-a-pool-per-sweep behaviour by ≥ 1.5× on fan-out wall time
  (asserted on any CPU count — the win is eliminated spawn/teardown
  latency, not parallel compute).
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.cache import ResultCache
from repro.experiments.fig2 import fig2_sweep_spec
from repro.experiments.parallel import SweepEngine, SweepSpec
from repro.experiments.pool import WorkerPool

#: Workers for the parallel leg (capped by the visible CPU count so
#: single-core CI boxes measure overhead honestly, not oversubscription).
_WORKERS = min(4, os.cpu_count() or 1)


def _payload_bytes(result) -> bytes:
    return json.dumps(result.payloads, sort_keys=True).encode()


def _mini_spec(scale):
    """One Fig. 2 panel (2 cores) at a sweep size that takes seconds."""
    bench_scale = scale.with_overrides(
        tasksets_per_point=max(12, scale.tasksets_per_point // 2),
        utilization_step=0.1,
        utilization_start=0.1,
        utilization_stop=0.9,
    )
    return fig2_sweep_spec(2, bench_scale)


def test_parallel_sweep_speedup(benchmark, scale):
    spec = _mini_spec(scale)

    serial_engine = SweepEngine(workers=1)
    serial = benchmark.pedantic(
        serial_engine.run, args=(spec,), rounds=1, iterations=1
    )
    start = time.perf_counter()
    serial_again = serial_engine.run(spec)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepEngine(workers=_WORKERS).run(spec)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print()
    print(
        f"serial {serial_s:.2f}s vs parallel({_WORKERS}) {parallel_s:.2f}s "
        f"→ speedup ×{speedup:.2f} on {os.cpu_count()} CPU(s)"
    )

    # Correctness is hardware-independent: identical bytes, all modes.
    assert _payload_bytes(serial) == _payload_bytes(serial_again)
    assert _payload_bytes(serial) == _payload_bytes(parallel)

    if (os.cpu_count() or 1) >= 2 and _WORKERS >= 2:
        # With real cores behind the pool the fan-out must win.
        assert speedup > 1.1, (
            f"parallel sweep not faster: ×{speedup:.2f} "
            f"({_WORKERS} workers, {os.cpu_count()} CPUs)"
        )
    else:
        # Single visible CPU: only require that pool overhead stays
        # within a factor of two of the serial run.
        assert parallel_s < serial_s * 2.0


#: A ``repro all --scale smoke``-shaped batch: every paper experiment
#: contributes a panel or three, so model it as 12 small sweeps.
_FANOUT_PANELS = 12
_FANOUT_POINTS = 8
#: Fixed at 2 (not CPU-capped): the measured effect is pool
#: spawn/teardown latency, which exists — and is eliminated by reuse —
#: regardless of how many CPUs back the workers.
_FANOUT_WORKERS = 2


def _fanout_specs() -> list[SweepSpec]:
    """Calibration sweeps: per-point cost ≈ 0, so wall time *is* the
    engine's dispatch overhead (what this benchmark pins)."""
    return [
        SweepSpec(
            kind="calibration",
            seed=1000 + panel,
            points=tuple({"index": i} for i in range(_FANOUT_POINTS)),
        )
        for panel in range(_FANOUT_PANELS)
    ]


def _run_with_fork_per_sweep(specs) -> list:
    """The pre-pool engine behaviour: every sweep forks (and reaps) its
    own worker pool."""
    results = []
    for spec in specs:
        with WorkerPool(_FANOUT_WORKERS) as pool:
            results.append(SweepEngine(pool=pool).run(spec))
    return results


def _run_with_persistent_pool(specs) -> list:
    with WorkerPool(_FANOUT_WORKERS) as pool:
        return [SweepEngine(pool=pool).run(spec) for spec in specs]


def test_persistent_pool_fanout(benchmark):
    """Pinned: multi-sweep fan-out through one persistent pool must
    stay fast — and beat per-sweep forking ≥ 1.5×."""
    specs = _fanout_specs()

    start = time.perf_counter()
    forked = _run_with_fork_per_sweep(specs)
    forked_s = time.perf_counter() - start

    persistent = benchmark.pedantic(
        _run_with_persistent_pool, args=(specs,), rounds=3, iterations=1
    )
    start = time.perf_counter()
    persistent_again = _run_with_persistent_pool(specs)
    persistent_s = time.perf_counter() - start

    speedup = forked_s / persistent_s if persistent_s > 0 else float("inf")
    print()
    print(
        f"fan-out over {_FANOUT_PANELS} sweeps: per-sweep fork "
        f"{forked_s*1000:.0f}ms vs persistent pool "
        f"{persistent_s*1000:.0f}ms → ×{speedup:.1f} "
        f"({_FANOUT_WORKERS} workers, {os.cpu_count()} CPU(s))"
    )

    # Determinism first: pooling strategy never changes a byte.
    for a, b, c in zip(forked, persistent, persistent_again):
        assert _payload_bytes(a) == _payload_bytes(b) == _payload_bytes(c)

    # The acceptance bar: reuse must amortise spawn/teardown.  This
    # holds on any CPU count — the eliminated cost is fork latency.
    assert speedup >= 1.5, (
        f"persistent pool only ×{speedup:.2f} faster than "
        f"per-sweep forking"
    )


def test_cache_hit_latency(scale, tmp_path):
    spec = _mini_spec(scale)

    cold_engine = SweepEngine(workers=1, cache=ResultCache(tmp_path))
    start = time.perf_counter()
    cold = cold_engine.run(spec)
    cold_s = time.perf_counter() - start

    warm_engine = SweepEngine(workers=1, cache=ResultCache(tmp_path))
    start = time.perf_counter()
    warm = warm_engine.run(spec)
    warm_s = time.perf_counter() - start

    print()
    print(
        f"cold {cold_s:.2f}s vs cache-warm {warm_s*1000:.0f}ms "
        f"→ ×{cold_s / warm_s:.0f} faster on hit"
    )

    assert warm.stats.computed_points == 0
    assert warm.stats.cached_points == len(spec.points)
    assert _payload_bytes(cold) == _payload_bytes(warm)
    # Reading a few JSON files must beat recomputing the sweep by a
    # wide margin; 5× is conservative (observed: orders of magnitude).
    assert warm_s < cold_s / 5.0
