"""Bench: regenerate Table I (the security-task catalogue).

Paper reference: Table I lists the six Tripwire/Bro security tasks and
their functions.  The regenerated table extends it with the timing
parameters and the per-scheme allocation on the UAV platform.
"""

from __future__ import annotations

from repro.experiments.table1 import format_table1, run_table1


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print()
    print(format_table1(rows))

    # Shape assertions mirroring the paper's table.
    assert len(rows) == 6
    assert sum(r.application == "tripwire" for r in rows) == 5
    assert sum(r.application == "bro" for r in rows) == 1
    # Every achieved period is admissible.
    for row in rows:
        assert row.period_des <= row.hydra_period <= row.period_max
        assert row.period_des <= row.single_period <= row.period_max
    # The dedicated core stretches periods at least as much as HYDRA
    # does overall (SingleCore concentrates all interference).
    assert sum(r.single_period for r in rows) >= sum(
        r.hydra_period for r in rows
    )
