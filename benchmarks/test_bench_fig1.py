"""Bench: regenerate Fig. 1 (UAV case study — detection-time CDFs).

Paper reference: Fig. 1 plots the empirical CDF of intrusion detection
time for HYDRA vs SingleCore on 2/4/8 cores and reports HYDRA detecting
on average 19.81 % / 27.23 % / 29.75 % faster.  The reproduction checks
the same *shape*: HYDRA's CDF dominates, the mean speedup is positive
everywhere, and it grows from the smallest to the largest platform.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig1 import format_fig1, run_fig1

#: The paper's reported mean-detection improvements, for the printout.
PAPER_SPEEDUPS = {2: 19.81, 4: 27.23, 8: 29.75}


def test_fig1_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        run_fig1, args=(scale,), rounds=1, iterations=1
    )

    print()
    print(format_fig1(result))

    assert len(result.points) == len(
        [c for c in scale.core_counts if c >= 2]
    )
    speedups = {}
    for point in result.points:
        # Every attack must eventually be detected.
        assert point.hydra.cdf.undetected == 0
        assert point.single.cdf.undetected == 0
        # HYDRA detects faster on average (the paper's headline).
        assert point.speedup > 0.0, (
            f"{point.cores} cores: HYDRA not faster"
        )
        speedups[point.cores] = point.speedup
        # CDF dominance in aggregate over a common grid.
        hi = max(
            point.hydra.cdf.support()[1], point.single.cdf.support()[1]
        )
        grid = list(np.linspace(hi / 20.0, hi, 20))
        assert sum(point.hydra.cdf.series(grid)) >= sum(
            point.single.cdf.series(grid)
        )
    # The gap grows with the core count (19.81 → 27.23 → 29.75 in the
    # paper); require the largest platform to beat the smallest.
    cores_sorted = sorted(speedups)
    if len(cores_sorted) >= 2:
        assert speedups[cores_sorted[-1]] > speedups[cores_sorted[0]]
