"""Bench: the structure-of-arrays analysis core against its scalar twin.

Two speedup *ratio* gates (enforced by ``tools/check_bench.py`` on the
current run, machine-independently, since both sides come from the same
process):

* **grid RTA ≥ 10× scalar** — :func:`repro.analysis.rta.
  response_times_grid` over a whole sweep's worth of cores versus the
  pre-refactor per-set loop (``rta_schedulable`` on each task set);
* **fast admission sweep ≥ 2× generic** — a fig2-style utilisation
  sweep partitioned through the incremental
  :class:`~repro.analysis.admission.ExactAdmissionCore` path versus the
  rebuild-and-test callable path.

The fast sides are also pinned against the committed baseline like the
other hot paths, so they cannot silently regress even while the ratio
still clears.

The workloads sit in the regime the paper's sweeps live in: many small
cores near the schedulability cliff (high per-core utilisation — lots
of fixed-point iterations, frequent rejections), where both the
vectorised kernel and the incremental admission state earn their keep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.arrays import TaskArrays, pad_task_grid
from repro.analysis.rta import core_response_times, response_times_grid
from repro.analysis.schedulability import rta_test
from repro.model.platform import Platform
from repro.model.task import RealTimeTask
from repro.partition.heuristics import try_partition_tasks
from repro.taskgen.synthetic import generate_workload

#: Grid workload: 1600 independent cores, 5–24 tasks each, per-core
#: utilisation drawn near the schedulability cliff.  The count is
#: deliberately large: it amortises the grid solver's per-iteration
#: dispatch overhead (raising the true speedup) and lengthens each
#: benchmark round, which steadies the per-round minima the ratio gate
#: compares.
_GRID_SETS = 1600
_GRID_TASKS = (5, 25)
_GRID_UTIL = (0.75, 1.02)

#: Fig2-style sweep: best-fit partitioning on M=4 at the saturation end
#: of the utilisation axis, where acceptance starts dropping.
_SWEEP_PLATFORM = Platform(4)
_SWEEP_UTILS = (2.8, 3.2, 3.4)
_SWEEP_TRIALS = 20


def _grid_task_sets() -> list[list[RealTimeTask]]:
    rng = np.random.default_rng(42)
    sets = []
    for s in range(_GRID_SETS):
        n = int(rng.integers(*_GRID_TASKS))
        periods = np.sort(rng.uniform(5.0, 1000.0, n))
        shares = rng.dirichlet(np.ones(n))
        util = rng.uniform(*_GRID_UTIL)
        wcets = np.minimum(shares * util * periods, 0.98 * periods)
        sets.append(
            [
                RealTimeTask(
                    name=f"t{s:03d}_{i:03d}",
                    wcet=float(wcets[i]),
                    period=float(periods[i]),
                )
                for i in range(n)
            ]
        )
    return sets


@pytest.fixture(scope="module")
def grid_sets() -> list[list[RealTimeTask]]:
    return _grid_task_sets()


@pytest.fixture(scope="module")
def grid_arrays(grid_sets):
    return pad_task_grid(
        [TaskArrays.from_tasks(s).rm_sorted() for s in grid_sets]
    )


@pytest.fixture(scope="module")
def sweep_sets() -> list[list[RealTimeTask]]:
    sets = []
    for u in _SWEEP_UTILS:
        for k in range(_SWEEP_TRIALS):
            rng = np.random.default_rng(20180308 + 1000 * k + int(u * 100))
            workload = generate_workload(_SWEEP_PLATFORM, u, rng)
            sets.append(list(workload.rt_tasks))
    return sets


@pytest.mark.benchmark(min_rounds=60)
def test_rta_grid_sweep(benchmark, grid_arrays):
    """Pinned + ratio-gated: one grid solve for a whole sweep's cores."""
    wcets, periods, deadlines, valid = grid_arrays

    def verdicts() -> np.ndarray:
        responses = response_times_grid(wcets, periods, deadlines, valid)
        ok = np.where(valid, responses <= deadlines + 1e-9, True)
        return ok.all(axis=1)

    accepted = benchmark(verdicts)
    assert accepted.shape == (_GRID_SETS,)
    assert 0 < int(accepted.sum()) < _GRID_SETS


@pytest.mark.benchmark(min_rounds=20)
def test_rta_scalar_sweep(benchmark, grid_sets, grid_arrays):
    """Reference loop the grid ratio is measured against: the scalar
    path solves every task's fixed point, like the grid does (the
    early-exiting ``rta_schedulable`` answers a cheaper question).

    The explicit ``min_rounds`` on this pair (and the sweep pair
    below) matter: ``check_bench.py`` gates the *ratio of per-round
    medians*, which is only steady when both sides collect enough
    long rounds for sustained machine load to cancel out."""
    solved = benchmark(
        lambda: [core_response_times(tasks) for tasks in grid_sets]
    )
    verdicts = [
        all(rs[t.name] <= t.deadline + 1e-9 for t in tasks)
        for rs, tasks in zip(solved, grid_sets)
    ]
    wcets, periods, deadlines, valid = grid_arrays
    responses = response_times_grid(wcets, periods, deadlines, valid)
    grid_ok = np.where(valid, responses <= deadlines + 1e-9, True).all(axis=1)
    assert verdicts == list(grid_ok)


@pytest.mark.benchmark(min_rounds=15)
def test_partition_sweep_fast(benchmark, sweep_sets):
    """Pinned + ratio-gated: fig2-style sweep through the incremental
    exact-RTA admission path."""

    def sweep() -> int:
        placed = 0
        for tasks in sweep_sets:
            partition = try_partition_tasks(
                tasks, _SWEEP_PLATFORM, admission="rta"
            )
            placed += partition is not None
        return placed

    placed = benchmark(sweep)
    assert 0 < placed <= len(sweep_sets)


@pytest.mark.benchmark(min_rounds=15)
def test_partition_sweep_generic(benchmark, sweep_sets):
    """Reference sweep through the rebuild-and-test admission path —
    must place exactly the same task sets as the fast path."""

    def sweep() -> list[bool]:
        return [
            try_partition_tasks(
                tasks, _SWEEP_PLATFORM, admission=lambda ts: rta_test(ts)
            )
            is not None
            for tasks in sweep_sets
        ]

    generic = benchmark(sweep)
    fast = [
        try_partition_tasks(tasks, _SWEEP_PLATFORM, admission="rta")
        is not None
        for tasks in sweep_sets
    ]
    assert generic == fast
