"""Shared fixtures for the benchmark harness.

Every figure/table benchmark runs the corresponding experiment driver
once (``benchmark.pedantic`` with a single round — these are experiment
regenerations, not microbenchmarks), prints the regenerated table the
paper reports, and asserts the paper's qualitative shape.

Scale via ``REPRO_SCALE`` (``smoke`` / ``default`` / ``paper``);
``default`` keeps the whole suite within a few minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import get_scale
from repro.experiments.pool import shutdown_shared_pool


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session", autouse=True)
def _reap_shared_pool():
    yield
    shutdown_shared_pool()
