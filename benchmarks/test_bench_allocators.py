"""Benchmarks of the first-class allocator API.

``test_allocator_dispatch`` is pinned by the CI benchmark gate
(``tools/check_bench.py``): it measures the full registry round trip a
sweep cell pays per task set — spec lookup, strategy instantiation,
the HYDRA allocation itself, and the typed
:class:`~repro.model.allocation.AllocationResult` envelope.  If the
registry ever grows import-time or per-call overhead, paper-scale
scenario grids (thousands of cells) feel it first.

The remaining benchmarks compare the registered strategy families on
one fixed mid-load system — not gated, but reported so a PR that slows
a family down shows up in the ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import pytest

from repro.allocators import get_allocator, run_allocator
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)


@pytest.fixture(scope="module")
def system() -> SystemModel:
    """A 4-core system with mixed load and five security tasks."""
    platform = Platform(4)
    rt = []
    assignment = {}
    for core in range(4):
        for j in range(3):
            name = f"rt{core}_{j}"
            period = 10.0 * (j + 1) + 7.0 * core
            rt.append(
                RealTimeTask(name=name, wcet=period * 0.15, period=period)
            )
            assignment[name] = core
    security = [
        SecurityTask(
            name=f"s{i}",
            wcet=4.0 + 3.0 * i,
            period_des=80.0 + 40.0 * i,
            period_max=(80.0 + 40.0 * i) * 6.0,
        )
        for i in range(5)
    ]
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, TaskSet(rt), assignment),
        security_tasks=TaskSet(security),
    )


def test_allocator_dispatch(benchmark, system):
    """Registry spec → strategy → AllocationResult, end to end (gated)."""

    def dispatch():
        return run_allocator("hydra", system)

    result = benchmark(dispatch)
    assert result.allocator == "hydra"
    assert result.schedulable
    assert result.elapsed_s >= 0.0


def test_allocator_lookup_only(benchmark):
    """Pure registry resolution cost (no allocation)."""
    allocator = benchmark(get_allocator, "binpack-best-fit")
    assert allocator.name == "binpack-best-fit"


@pytest.mark.parametrize(
    "spec",
    ["hydra", "first-feasible", "binpack-best-fit", "binpack-worst-fit"],
)
def test_strategy_families(benchmark, system, spec):
    """Per-family allocation cost on the shared fixed system."""
    allocator = get_allocator(spec)
    allocation = benchmark(allocator.allocate, system)
    assert allocation.schedulable
