"""Bench: regenerate Fig. 3 (HYDRA vs the optimal assignment).

Paper reference: Fig. 3 plots the difference in cumulative tightness
``Δη = (η_OPT − η_HYDRA)/η_OPT`` on M = 2 with up to six security
tasks.  The paper's shape: zero through low/medium utilisation, rising
at high utilisation, with degradation "no more than 22 %".
"""

from __future__ import annotations

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        run_fig3, args=(scale,), rounds=1, iterations=1
    )

    print()
    print(format_fig3(result))

    points = [p for p in result.points if p.compared > 0]
    assert points, "no comparable task sets generated"

    # Low/medium utilisation: HYDRA matches the optimum.
    low_half = [p for p in points if p.utilization <= 1.0]
    for point in low_half:
        assert point.mean_gap <= 2.0, (
            f"gap at U={point.utilization} should be ~0"
        )

    # The gap never goes negative (OPT is an upper bound) and the mean
    # degradation stays within the paper's ballpark (≤ 22 %, with slack
    # for the smaller default sample).
    for point in points:
        assert point.mean_gap >= -1e-9
    assert max(p.mean_gap for p in points) <= 35.0
