"""Benchmarks of the workload generation hot path.

``test_workload_batch_generation`` is pinned by the CI benchmark gate
(``tools/check_bench.py``): it measures the vectorised
:func:`~repro.taskgen.synthetic.generate_workload_batch` route over a
whole utilisation sweep — task counts drawn in two vectorised calls,
one Randfixedsum table build per distinct task count (batched across
all the different target sums), all periods from a single draw.  This
is the route every workload-axis scenario point pays
(``run_scenario_point`` generates each family's point batch through
``generate_batch``); if the batching ever silently degenerates to
per-instance work, paper-scale grids feel it first.

``test_workload_per_instance_loop`` runs the identical recipe through
the serial :func:`generate_workload` loop — not gated, but reported in
the ``BENCH_*.json`` artifacts so the batched/serial ratio stays
visible.  ``test_workload_dispatch`` pins nothing either; it tracks
the registry round trip (spec → generator → instance) a scenario cell
pays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.taskgen.synthetic import (
    generate_workload,
    generate_workload_batch,
    utilization_sweep,
)
from repro.workloads import run_workload

#: A 2-core paper sweep (39 points) × 3 task sets per point.
TARGETS = [u for u in utilization_sweep(2) for _ in range(3)]


def test_workload_batch_generation(benchmark):
    """The vectorised batch route over a full sweep (gated)."""

    def batch():
        return generate_workload_batch(2, TARGETS, np.random.default_rng(7))

    workloads = benchmark(batch)
    assert len(workloads) == len(TARGETS)
    assert all(len(w.rt_tasks) > 0 for w in workloads)


def test_workload_per_instance_loop(benchmark):
    """The serial per-instance route on the same targets (comparison)."""

    def loop():
        rng = np.random.default_rng(7)
        return [generate_workload(2, u, rng) for u in TARGETS]

    workloads = benchmark(loop)
    assert len(workloads) == len(TARGETS)


@pytest.mark.parametrize("spec", ["paper-synthetic", "uunifast"])
def test_workload_dispatch(benchmark, spec):
    """Registry spec → generator → one instance, end to end."""
    workload = benchmark(run_workload, spec, 2, 1.3, 42)
    assert workload.rt_tasks
