"""Benchmarks for the unified experiment API layer.

The protocol adds indirection (registry lookup, spec hashing, result
encoding) on top of the raw sweeps; these benches pin that overhead so
a regression in the API layer — as opposed to the numeric kernels —
shows up on its own line.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, get_experiment
from repro.experiments.config import SCALES

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def table1_result():
    return get_experiment("table1").run(SMOKE)


def test_bench_registry_lookup(benchmark):
    benchmark(get_experiment, "fig2")


def test_bench_spec_hash(benchmark):
    experiment = get_experiment("fig2")
    benchmark(experiment.spec_hash, SMOKE)


def test_bench_table1_through_protocol(benchmark):
    experiment = get_experiment("table1")
    result = benchmark(experiment.run, SMOKE)
    assert len(result.rows) == 6


def test_bench_result_json_round_trip(benchmark, table1_result):
    def round_trip():
        return ExperimentResult.from_json(table1_result.to_json())

    assert benchmark(round_trip) == table1_result
