"""Bench: the monitoring-quality companion study (DESIGN §7).

Quantifies synthetically what the paper's Fig. 1 shows on one case
study: even when the SingleCore design *accepts* a task set, the
monitoring it achieves is looser (longer periods → slower detection).
"""

from __future__ import annotations

from repro.experiments.quality import format_quality, run_quality


def test_quality_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        run_quality, args=(scale,), rounds=1, iterations=1
    )

    print()
    print(format_quality(result))

    usable = [p for p in result.points if p.both_accepted > 0]
    assert usable, "no commonly-accepted task sets"

    # Low utilisation: both schemes reach the desired periods.
    first = usable[0]
    assert first.mean_tightness_hydra >= 0.99
    assert first.mean_tightness_single >= 0.99

    # HYDRA's tightness is never worse where both accept.
    for point in usable:
        assert point.advantage >= -1e-9

    # And the gap opens at high utilisation (the Fig. 1 narrative).
    assert max(p.advantage for p in usable) > 0.1
