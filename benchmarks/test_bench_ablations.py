"""Bench: the DESIGN §7 ablations (beyond the paper's figures).

* period-solver ablation — how much acceptance the GP-compatible
  linearisation gives up vs exact RTA, and what joint-LP refinement
  recovers;
* core-choice ablation — HYDRA's argmax-tightness rule vs cheaper rules;
* search ablation — branch-and-bound vs exhaustive enumeration;
* extension ablation — §V variants in the simulator.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    core_choice_ablation,
    extension_ablation,
    format_allocator_comparison,
    format_extension_ablation,
    format_search_ablation,
    partitioning_ablation,
    search_ablation,
    solver_ablation,
)


def test_solver_ablation(benchmark, scale):
    comparison = benchmark.pedantic(
        solver_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_allocator_comparison(comparison, "Ablation: period solver"))

    closed = comparison.series("hydra")
    exact = comparison.series("hydra[exact-rta]")
    refined = comparison.series("hydra+lp")
    for c, e, r in zip(closed, exact, refined):
        # Exact RTA is strictly more permissive than the linear bound.
        assert e.acceptance >= c.acceptance - 1e-9
        # LP refinement keeps the assignment, so acceptance matches.
        assert r.acceptance == c.acceptance
        # Refinement can only improve mean tightness.
        if c.acceptance > 0:
            assert r.mean_tightness >= c.mean_tightness - 1e-9


def test_core_choice_ablation(benchmark, scale):
    comparison = benchmark.pedantic(
        core_choice_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(
        format_allocator_comparison(
            comparison, "Ablation: core-selection rule"
        )
    )

    hydra = comparison.series("hydra")
    first = comparison.series("first-feasible")
    assert hydra and first
    # Where both schedule everything, HYDRA's rule yields tighter
    # monitoring than blindly taking the first feasible core.
    saturated = [
        (h, f)
        for h, f in zip(hydra, first)
        if h.acceptance == 1.0 and f.acceptance == 1.0
    ]
    assert saturated
    assert all(
        h.mean_tightness >= f.mean_tightness - 1e-9 for h, f in saturated
    )


def test_search_ablation(benchmark, scale):
    result = benchmark.pedantic(
        search_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_search_ablation(result))

    assert result.systems > 0
    # Branch and bound returns identical optima with fewer LP solves.
    assert result.agreements == result.systems
    assert result.bnb_lp_solves <= result.exhaustive_lp_solves


def test_partitioning_ablation(benchmark, scale):
    comparison = benchmark.pedantic(
        partitioning_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(
        format_allocator_comparison(
            comparison, "Ablation: real-time partitioning heuristic"
        )
    )

    schemes = comparison.schemes()
    assert set(schemes) == {"best-fit", "worst-fit", "first-fit"}
    # At low utilisation the heuristic is irrelevant: everything fits
    # at the desired periods regardless of packing.
    first_util = comparison.cells[0].utilization
    low_cells = [
        c for c in comparison.cells if c.utilization == first_util
    ]
    assert all(c.acceptance == 1.0 for c in low_cells)
    assert all(c.mean_tightness >= 0.99 for c in low_cells)


def test_extension_ablation(benchmark, scale):
    cells = benchmark.pedantic(
        extension_ablation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_extension_ablation(cells))

    by_mode = {c.mode: c for c in cells}
    # The paper's partitioned preemptive design never harms RT tasks.
    assert by_mode["partitioned"].missed_deadlines == 0
    assert by_mode["global"].missed_deadlines == 0
    # Global migration (paper §V) detects no slower on average.
    assert by_mode["global"].mean_detection <= (
        by_mode["partitioned"].mean_detection * 1.05
    )
