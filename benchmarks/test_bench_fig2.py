"""Bench: regenerate Fig. 2 (acceptance-ratio improvement sweep).

Paper reference: Fig. 2 plots the improvement in acceptance ratio of
HYDRA over SingleCore against total utilisation for 2/4/8 cores.  The
paper's shape: ≈ 0 at low utilisation (both schemes schedule
everything), sharply positive at high utilisation (the dedicated core
saturates first).
"""

from __future__ import annotations

from repro.experiments.fig2 import format_fig2, run_fig2


def test_fig2_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        run_fig2, args=(scale,), rounds=1, iterations=1
    )

    print()
    print(format_fig2(result))

    for cores in result.core_counts:
        panel = result.panel(cores)
        low = panel[0]
        high_region = [p for p in panel if p.normalized_utilization >= 0.84]

        # Low utilisation: both schemes accept (nearly) everything.
        assert low.ratio_hydra >= 0.95
        assert low.ratio_single >= 0.95
        assert abs(low.improvement) <= 5.0

        # HYDRA never loses to SingleCore at any point.
        for point in panel:
            assert point.ratio_hydra >= point.ratio_single - 1e-9

        # High utilisation: HYDRA schedules strictly more task sets.
        assert high_region, "sweep must reach the high-utilisation region"
        assert any(p.improvement > 10.0 for p in high_region), (
            f"{cores} cores: no high-utilisation improvement observed"
        )
