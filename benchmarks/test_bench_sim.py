"""Bench: detection scoring over a simulated schedule.

A detection-latency sweep scores every sampled attack against every
simulated schedule, so the per-attack query is a hot path.  Two
benchmarks measure the same workload — one long UAV-style simulation,
a few hundred attacks — through the two implementations:

* ``test_detection_scoring`` — the indexed path (one
  :class:`~repro.sim.detection.DetectionIndex` build, then a bisect
  per attack), pinned against the committed baseline;
* ``test_detection_scan_reference`` — the reference per-attack scan
  over all jobs (``detection_time`` in a loop), kept as the in-run
  yardstick for the ``check_bench.py`` speedup floor.

Both are asserted result-identical here, so the ratio gate can never
trade correctness for speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig1 import build_uav_systems
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import (
    DETECTION_POLICIES,
    build_surface_map,
    detection_time,
    detection_times,
)
from repro.sim.runner import simulate_allocation

_DURATION = 60_000.0
_ATTACKS = 512


@pytest.fixture(scope="module")
def detection_workload():
    """One long simulated UAV schedule plus a fixed attack sample."""
    system, allocation, _, _ = build_uav_systems(2)
    result = simulate_allocation(
        system,
        allocation,
        duration=_DURATION,
        rng=np.random.default_rng(0),
        prune_idle_cores=True,
    )
    attacks = sample_attacks(
        _ATTACKS,
        (0.0, _DURATION * 0.75),
        surfaces_of(system.security_tasks),
        rng=np.random.default_rng(42),
    )
    return system, result, attacks


def test_detection_scoring(benchmark, detection_workload):
    """Pinned: index build + one bisect query per attack."""
    system, result, attacks = detection_workload

    def score():
        return {
            policy: detection_times(
                result, attacks, system.security_tasks, policy=policy
            )
            for policy in DETECTION_POLICIES
        }

    scored = benchmark(score)
    for policy in DETECTION_POLICIES:
        assert len(scored[policy]) == _ATTACKS


def test_detection_scan_reference(benchmark, detection_workload):
    """The O(jobs × attacks) reference scan the index replaced."""
    system, result, attacks = detection_workload
    surface_map = build_surface_map(system.security_tasks)

    def score():
        return {
            policy: [
                detection_time(result, attack, surface_map, policy=policy)
                for attack in attacks
            ]
            for policy in DETECTION_POLICIES
        }

    scanned = benchmark(score)
    # The indexed path must be result-identical to the scan.
    for policy in DETECTION_POLICIES:
        assert scanned[policy] == detection_times(
            result, attacks, system.security_tasks, policy=policy
        )
