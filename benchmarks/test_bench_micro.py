"""Microbenchmarks of the computational substrates.

These are true pytest-benchmark measurements (many rounds) of the hot
kernels every experiment leans on: period adaptation, exact RTA, the
simplex LP, the GP interior point, Randfixedsum and the event simulator.
They guard against performance regressions that would silently make the
paper-scale sweeps infeasible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.analysis.rta import response_time, response_times_batch
from repro.model.task import SecurityTask
from repro.opt.lp import solve_lp
from repro.opt.period import adapt_period
from repro.opt.period_gp import adapt_period_gp
from repro.sim.engine import SimTask, Simulator
from repro.taskgen.randfixedsum import randfixedsum


@pytest.fixture(scope="module")
def env() -> InterferenceEnv:
    rng = np.random.default_rng(11)
    interferers = []
    for _ in range(12):
        period = float(rng.uniform(10.0, 1000.0))
        interferers.append(Interferer(period * 0.05, period))
    return InterferenceEnv(interferers)


@pytest.fixture(scope="module")
def task() -> SecurityTask:
    return SecurityTask(
        name="s", wcet=25.0, period_des=1000.0, period_max=10_000.0
    )


def test_adapt_period_closed_form(benchmark, task, env):
    solution = benchmark(adapt_period, task, env)
    assert solution is not None


def test_adapt_period_gp_route(benchmark, task, env):
    solution = benchmark(adapt_period_gp, task, env)
    assert solution is not None


def test_exact_rta(benchmark, env):
    result = benchmark(response_time, 25.0, env.interferers)
    assert result < float("inf")


def test_rta_batch(benchmark):
    """The vectorised whole-core RTA — the admission test's fast path
    on large cores, pinned by the CI benchmark gate."""
    rng = np.random.default_rng(7)
    n = 64
    periods = np.sort(rng.uniform(10.0, 2000.0, size=n))
    wcets = periods * rng.uniform(0.002, 0.012, size=n)

    times = benchmark(response_times_batch, wcets, periods)
    assert times.shape == (n,)
    assert np.all(times[np.isfinite(times)] >= wcets[np.isfinite(times)])


def test_simplex_lp(benchmark):
    rng = np.random.default_rng(5)
    n = 12
    c = -rng.uniform(0.5, 2.0, size=n)
    a_ub = rng.uniform(0.0, 1.0, size=(n, n))
    b_ub = np.full(n, float(n))
    bounds = [(0.0, 3.0)] * n

    result = benchmark(solve_lp, c, a_ub, b_ub, None, None, bounds)
    assert result.is_optimal


def test_randfixedsum(benchmark):
    rng = np.random.default_rng(5)
    out = benchmark(randfixedsum, 40, 6.0, 50, rng)
    assert out.shape == (50, 40)


def test_simulator_throughput(benchmark):
    tasks = [
        SimTask(name=f"t{i}", wcet=1.0 + i * 0.3, period=10.0 * (i + 1),
                priority=i, core=i % 2)
        for i in range(8)
    ]

    def run():
        return Simulator(tasks, num_cores=2, duration=10_000.0).run()

    result = benchmark(run)
    assert not result.missed_any_deadline


def test_hydra_allocation_synthetic(benchmark):
    from repro.core.hydra import HydraAllocator
    from repro.experiments.runner import build_hydra_system
    from repro.taskgen.synthetic import generate_workload

    workload = generate_workload(8, 4.0, np.random.default_rng(3))
    system = build_hydra_system(workload)
    assert system is not None
    allocator = HydraAllocator()

    allocation = benchmark(allocator.allocate, system)
    assert allocation.schedulable
