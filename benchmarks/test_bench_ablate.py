"""Bench: the ablation harness's two hot paths.

* **run-set generation** — expanding an ablation config into the
  baseline plus every swap-one variant and deriving each run's
  content-addressed id (spec-hash over canonical JSON).  This is pure
  config arithmetic + hashing and runs on every ``repro ablate``
  invocation and every ``aggregate_domain`` call, so it must stay
  cheap;
* **cached re-scoring** — a warm rerun of a whole study: every sweep
  point served from the sharded store, then importance scoring and
  ranking on top.  This is the interactive loop ("tweak the axes,
  re-rank") and must stay store-read-dominated.
"""

from __future__ import annotations

from repro.ablate import AblationExperiment, parse_ablation, run_id, run_set
from repro.experiments.parallel import SweepEngine
from repro.experiments.store import ExperimentStore

#: The full five-axis study over the paper's design point.
_FULL_DOC = {
    "ablation": {"name": "bench"},
    "baseline": {"cores": [2, 4]},
}

#: A two-axis study sized for a repeatable warm-cache rerun.
_RESCORE_DOC = {
    "ablation": {"name": "bench-rescore", "axes": ["ordering", "admission"]},
    "baseline": {"cores": [2]},
}


def test_ablate_runset(benchmark, scale):
    """Pinned: config → run set → content-addressed run ids."""

    def expand():
        config = parse_ablation(_FULL_DOC)
        runs, skipped = run_set(config)
        return runs, skipped, [run_id(r, scale) for r in runs]

    runs, skipped, ids = benchmark(expand)
    assert runs[0].is_baseline
    # one variant per non-incumbent component per axis, skips recorded
    # (allocator axis: 16 registered strategies, 1 incumbent)
    assert len(runs) + len(skipped) == 1 + (3 + 2 + 4 + 16 + 7)
    assert len(set(ids)) == len(ids)


def test_ablate_cached_rescore(benchmark, scale, tmp_path):
    """Pinned: warm-cache rerun of a study (store reads + scoring)."""
    experiment = AblationExperiment(parse_ablation(_RESCORE_DOC))
    store = ExperimentStore(tmp_path / "cache")
    cold = experiment.run(scale, SweepEngine(cache=store))

    def rescore():
        return experiment.run(
            scale, SweepEngine(cache=ExperimentStore(tmp_path / "cache"))
        )

    warm = benchmark(rescore)
    assert warm == cold  # byte-identical to the cold run
    domain = experiment.decode_data(warm.data)
    assert len(domain.components) == 2 + 4  # orderings + admissions swaps
