"""Bench: the sharded result store vs the v1 JSON-per-point layout.

Two properties are pinned:

* **warm read** — serving a whole sweep's worth of entries from a
  shard (one index load + seek/read pairs) is fast in absolute terms
  and beats reading the same entries from a v1 directory of individual
  JSON files;
* **batched write** — ``put_many`` appends a sweep's results through
  one file handle, beating one-file-per-point creation.

Entry payloads mimic an acceptance point (a few hundred bytes of JSON)
and the entry count mimics a mid-sized design-space sweep.
"""

from __future__ import annotations

import time

from repro.experiments.store import ResultStore, cache_key, write_v1_entry

#: Entries per benchmark round — a mid-sized sweep panel.
_ENTRIES = 400


def _key(i: int) -> dict:
    return {
        "format": 1,
        "kind": "bench",
        "seed": 2018,
        "index": i,
        "point": {"utilization": 0.1 + (i % 9) * 0.1},
        "params": {"cores": 4, "tasksets_per_point": 25},
    }


def _payload(i: int) -> dict:
    return {
        "outcomes": [
            {"utilization": 0.5, "accepted": bool((i + j) % 3), "eta": j * 0.25}
            for j in range(10)
        ]
    }


def _entries() -> list[tuple[dict, dict]]:
    return [(_key(i), _payload(i)) for i in range(_ENTRIES)]


def test_store_warm_read(benchmark, tmp_path):
    """Pinned: the cache warm-read hot path (batched shard reads)."""
    store = ResultStore(tmp_path / "v2")
    store.put_many("bench", _entries())
    keys = [_key(i) for i in range(_ENTRIES)]

    def warm_read():
        reader = ResultStore(tmp_path / "v2")
        return reader.get_many("bench", keys)

    results = benchmark(warm_read)
    assert all(r is not None for r in results)
    assert results[3] == _payload(3)


def test_store_put_many(benchmark, tmp_path):
    """Pinned: batched persistence of a sweep's computed points."""
    counter = iter(range(10_000))

    def write_batch():
        shard_dir = tmp_path / f"v2-{next(counter)}"
        return ResultStore(shard_dir).put_many("bench", _entries())

    written = benchmark(write_batch)
    assert written == _ENTRIES


def test_store_beats_v1_layout(tmp_path):
    """The reason the store exists: at sweep scale, one shard beats
    thousands of per-point files on both write and warm read."""
    entries = _entries()

    start = time.perf_counter()
    for key, payload in entries:
        write_v1_entry(tmp_path / "v1", "bench", key, payload)
    v1_write_s = time.perf_counter() - start

    store = ResultStore(tmp_path / "v2")
    start = time.perf_counter()
    store.put_many("bench", entries)
    v2_write_s = time.perf_counter() - start

    # v1 warm read = the old ResultCache.get loop: open every file.
    import json

    keys = [key for key, _ in entries]
    v1_dir = tmp_path / "v1" / "bench"
    start = time.perf_counter()
    v1_read = [
        json.loads((v1_dir / f"{cache_key(key)}.json").read_text())["payload"]
        for key in keys
    ]
    v1_read_s = time.perf_counter() - start

    start = time.perf_counter()
    v2_read = ResultStore(tmp_path / "v2").get_many("bench", keys)
    v2_read_s = time.perf_counter() - start

    print()
    print(
        f"{_ENTRIES} entries: write v1 {v1_write_s*1000:.0f}ms vs v2 "
        f"{v2_write_s*1000:.0f}ms (×{v1_write_s / v2_write_s:.1f}); "
        f"warm read v1 {v1_read_s*1000:.0f}ms vs v2 "
        f"{v2_read_s*1000:.0f}ms (×{v1_read_s / v2_read_s:.1f})"
    )

    assert v1_read == v2_read
    # Writes are where per-point files hurt most (one create+rename
    # each): the batched append must win outright.  Warm reads at this
    # size are JSON-parse-dominated for both layouts, so the store only
    # has to avoid regressing (its structural win — no per-entry
    # open/stat — compounds with entry count, not payload size).
    assert v2_write_s < v1_write_s
    assert v2_read_s < v1_read_s * 1.25


def test_migration_throughput(tmp_path):
    """One-shot v1 ingestion stays cheap even for mid-sized caches."""
    for key, payload in _entries():
        write_v1_entry(tmp_path, "bench", key, payload)

    start = time.perf_counter()
    store = ResultStore(tmp_path)  # migrates on open
    migrate_s = time.perf_counter() - start

    print()
    print(f"migrated {_ENTRIES} v1 entries in {migrate_s*1000:.0f}ms")
    assert len(store) == _ENTRIES
    assert store.pending_v1_entries() == 0
    assert migrate_s < 30.0  # generous: CI boxes can be slow
